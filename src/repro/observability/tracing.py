"""Request-scoped tracing for the serving hot path.

Every query may carry a :class:`TraceContext` that accumulates *spans* —
``(name, start, end, meta)`` tuples stamped with ``time.monotonic()`` — for
each stage it crosses: frontend validation, selection, cache lookup, queue
wait, batch assembly, the RPC send/wait/recv legs, container evaluation and
the straggler/deadline path.  The design splits queries into three modes so
the common case stays near-free:

``sampled``
    Head-sampled at ``1 / sample_every`` (default 1/256), or forced by a
    caller-supplied trace id (the ``X-Clipper-Trace-Id`` request header).
    The engine records full per-stage spans, feeds the per-stage latency
    histograms, and always commits the trace.
``shadow``
    Every other query that *leaves the cache-hit path*, while
    ``tail_capture`` is on.  A pooled context is attached lazily at the
    first cache miss and rides along recording only what the slow paths
    stamp (queue wait, RPC legs, deadline misses, retries); on finish it is
    committed only when the query turned out interesting — SLO miss,
    default-output fallback, straggler, retried batch or container error —
    and recycled otherwise.  This is the tail-based capture that keeps the
    interesting 0.1% without paying for the boring 99.9%: pure cache hits
    never allocate a context at all, and boring misses recycle theirs
    without ever owning a trace id.
``off``
    Tracing disabled: :meth:`Tracer.begin` returns ``None`` after a single
    attribute check, and every instrumentation point is one branch on that
    ``None`` — the same discipline as the construction-time metric handles.

Committed traces land in a per-component ring buffer inside the process-wide
:class:`TraceRegistry`, which joins them into span *trees* (nesting by
interval containment) for ``GET /api/v1/trace/<id>`` and lists recent /
slow traces for ``GET /api/v1/traces``.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.metrics import MetricsRegistry

__all__ = [
    "TRACE_SLO_MISS",
    "TRACE_DEFAULT_USED",
    "TRACE_STRAGGLER",
    "TRACE_RETRIED",
    "TRACE_ERROR",
    "TRACE_CANARY",
    "TraceContext",
    "TraceRecord",
    "TraceRegistry",
    "Tracer",
    "flag_names",
    "format_trace_id",
]

# Tail-capture trigger flags.  A shadow trace whose flags are non-zero at
# finish is committed; a zero-flag shadow trace is recycled.
TRACE_SLO_MISS = 1
TRACE_DEFAULT_USED = 2
TRACE_STRAGGLER = 4
TRACE_RETRIED = 8
TRACE_ERROR = 16
TRACE_CANARY = 32

_FLAG_NAMES = (
    (TRACE_SLO_MISS, "slo_miss"),
    (TRACE_DEFAULT_USED, "default_used"),
    (TRACE_STRAGGLER, "straggler"),
    (TRACE_RETRIED, "retried"),
    (TRACE_ERROR, "error"),
    (TRACE_CANARY, "canary"),
)

#: Process-wide trace id source.  Ids are ints on the hot path (no hex
#: formatting per query) and rendered to strings only when a trace commits
#: or crosses the HTTP edge.
_TRACE_IDS = itertools.count(1)

#: Maximum pooled (recycled) shadow contexts per tracer.
_POOL_LIMIT = 64


def format_trace_id(trace_id: Any) -> str:
    """Render an internal (int) trace id as its wire/string form."""
    if isinstance(trace_id, str):
        return trace_id
    return f"{int(trace_id):016x}"


def flag_names(flags: int) -> List[str]:
    """The human-readable names of the set tail-capture flags."""
    return [name for bit, name in _FLAG_NAMES if flags & bit]


class TraceContext:
    """Mutable per-query span accumulator.

    ``trace_id`` is an int for internally sampled/shadow queries and a string
    when the caller supplied one.  ``spans`` holds ``(name, start, end,
    meta)`` tuples in ``time.monotonic()`` seconds; hot-path writers append
    tuples directly rather than calling :meth:`add` to save a method call.
    """

    __slots__ = ("trace_id", "sampled", "start", "flags", "spans")

    def __init__(self, trace_id: Any, sampled: bool, start: float) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self.start = start
        self.flags = 0
        self.spans: List[Tuple[str, float, float, Optional[dict]]] = []

    def add(
        self, name: str, start: float, end: float, meta: Optional[dict] = None
    ) -> None:
        """Record one completed span."""
        self.spans.append((name, start, end, meta))

    def flag(self, bit: int) -> None:
        """Mark the trace interesting (forces commit of a shadow trace)."""
        self.flags |= bit


class TraceRecord:
    """One committed trace: an immutable-ish summary held by the registry."""

    __slots__ = (
        "trace_id",
        "component",
        "start",
        "end",
        "flags",
        "spans",
        "sampled",
        "query_id",
        "wall_time",
    )

    def __init__(
        self,
        trace_id: str,
        component: str,
        start: float,
        end: float,
        flags: int,
        spans: List[Tuple[str, float, float, Optional[dict]]],
        sampled: bool = True,
        query_id: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.component = component
        self.start = start
        self.end = end
        self.flags = flags
        self.spans = spans
        self.sampled = sampled
        self.query_id = query_id
        self.wall_time = time.time()

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    def summary(self) -> Dict[str, Any]:
        """The listing shape used by ``GET /api/v1/traces``."""
        return {
            "trace_id": self.trace_id,
            "component": self.component,
            "duration_ms": self.duration_ms,
            "flags": flag_names(self.flags),
            "sampled": self.sampled,
            "query_id": self.query_id,
            "num_spans": len(self.spans),
            "captured_at": self.wall_time,
        }

    def to_tree(self) -> Dict[str, Any]:
        """Join the flat span list into a nested trace tree.

        Spans nest by interval containment: a span lies inside another when
        its ``[start, end]`` interval does.  Adjacent stages share boundary
        stamps, so containment checks carry a small epsilon.
        """
        eps = 1e-9
        base = self.start
        root: Dict[str, Any] = {
            "name": "request",
            "start_ms": 0.0,
            "duration_ms": self.duration_ms,
            "children": [],
        }
        # Latecomers (e.g. a straggler's RPC legs landing after commit) may
        # extend past the recorded end; the root absorbs them.
        root_end = max([self.end] + [span[2] for span in self.spans])
        stack: List[Tuple[float, float, Dict[str, Any]]] = [
            (base - eps, root_end + eps, root)
        ]
        ordered = sorted(self.spans, key=lambda s: (s[1], -s[2]))
        for name, s0, s1, meta in ordered:
            node: Dict[str, Any] = {
                "name": name,
                "start_ms": (s0 - base) * 1000.0,
                "duration_ms": (s1 - s0) * 1000.0,
                "children": [],
            }
            if meta:
                node["meta"] = dict(meta)
            while len(stack) > 1 and not (
                s0 >= stack[-1][0] - eps and s1 <= stack[-1][1] + eps
            ):
                stack.pop()
            stack[-1][2]["children"].append(node)
            stack.append((s0, s1, node))
        return {
            "trace_id": self.trace_id,
            "component": self.component,
            "duration_ms": self.duration_ms,
            "flags": flag_names(self.flags),
            "sampled": self.sampled,
            "query_id": self.query_id,
            "captured_at": self.wall_time,
            "root": root,
        }


class _Ring:
    """Fixed-size overwrite-on-wrap slot buffer for one component."""

    __slots__ = ("slots", "next")

    def __init__(self, capacity: int) -> None:
        self.slots: List[Optional[TraceRecord]] = [None] * capacity
        self.next = 0


class TraceRegistry:
    """Per-component ring buffers of committed traces, indexed by trace id.

    Commit and query take a short lock; nothing on the unsampled hot path
    touches the registry at all (uncommitted shadow contexts never reach
    it), so the lock cost is paid only by the sampled/interesting minority.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._rings: Dict[str, _Ring] = {}
        self._index: Dict[str, TraceRecord] = {}
        self._lock = threading.Lock()

    def commit(self, record: TraceRecord) -> None:
        """Add one committed trace, evicting the component's oldest if full."""
        with self._lock:
            ring = self._rings.get(record.component)
            if ring is None:
                ring = self._rings[record.component] = _Ring(self.capacity)
            slot = ring.next % self.capacity
            evicted = ring.slots[slot]
            if evicted is not None:
                # Only drop the index entry if it still points at the evicted
                # record (a duplicate id may have overwritten it already).
                if self._index.get(evicted.trace_id) is evicted:
                    del self._index[evicted.trace_id]
            ring.slots[slot] = record
            ring.next += 1
            self._index[record.trace_id] = record

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        """The committed record for one trace id, or None."""
        with self._lock:
            return self._index.get(trace_id)

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The joined span tree of one committed trace, or None."""
        record = self.get(trace_id)
        return record.to_tree() if record is not None else None

    def recent(
        self, slow: bool = False, limit: int = 50, component: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Summaries of recently committed traces, newest first.

        ``slow=True`` restricts the listing to traces flagged with an SLO
        miss (the ``?slow=1`` query of ``GET /api/v1/traces``).
        """
        with self._lock:
            records = [
                record
                for name, ring in self._rings.items()
                if component is None or name == component
                for record in ring.slots
                if record is not None
            ]
        if slow:
            records = [r for r in records if r.flags & TRACE_SLO_MISS]
        records.sort(key=lambda r: r.end, reverse=True)
        return [record.summary() for record in records[: max(0, limit)]]

    def components(self) -> List[str]:
        """Names of the components that have committed traces."""
        with self._lock:
            return sorted(self._rings)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)


class Tracer:
    """Per-engine trace factory implementing the three-mode sampling policy.

    Parameters
    ----------
    config:
        Anything with ``enabled`` / ``sample_every`` / ``tail_capture`` /
        ``ring_capacity`` attributes (normally a
        :class:`repro.core.config.TracingConfig`); ``None`` uses defaults.
    metrics:
        When given, committed *sampled* traces feed per-stage latency
        histograms (``predict.stage_ms{stage=...}``) through a pre-resolved
        metric family — the stage names are hashed once, not per query.
    component:
        Ring-buffer component name committed traces land under.
    registry:
        Share a :class:`TraceRegistry` across tracers; a private one is
        built otherwise.
    """

    def __init__(
        self,
        config: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
        component: str = "engine",
        registry: Optional[TraceRegistry] = None,
    ) -> None:
        self._enabled = bool(getattr(config, "enabled", True))
        self._sample_every = max(1, int(getattr(config, "sample_every", 256)))
        self._tail_capture = bool(getattr(config, "tail_capture", True))
        capacity = int(getattr(config, "ring_capacity", 512))
        self._component = component
        self.registry = registry if registry is not None else TraceRegistry(capacity)
        self._tick = 0
        self._pool: List[TraceContext] = []
        self._stage_family = (
            metrics.histogram_family("predict.stage_ms", label="stage")
            if metrics is not None
            else None
        )

    @property
    def active(self) -> bool:
        """Whether any query may carry a trace context (one-branch check)."""
        return self._enabled

    @property
    def sample_every(self) -> int:
        return self._sample_every

    @property
    def tail_capture(self) -> bool:
        return self._tail_capture

    def begin(
        self, trace_id: Optional[str] = None, start: Optional[float] = None
    ) -> Optional[TraceContext]:
        """Start a *sampled* trace for one query; None when head sampling
        passes the query over.

        A caller-supplied ``trace_id`` (the HTTP trace header) forces
        sampling.  ``start`` lets the caller reuse an existing monotonic
        stamp instead of paying another clock read.  Unsampled queries get
        ``None`` here — the cache-hit fast path pays only this call — and
        pick up a :meth:`shadow` context lazily if they leave the cache and
        enter the dispatch path (the only place tail-capture flags can
        originate).
        """
        if not self._enabled:
            return None
        self._tick = tick = self._tick + 1
        if trace_id is None:
            if tick % self._sample_every:
                return None
            trace_id = next(_TRACE_IDS)
        if start is None:
            start = time.monotonic()
        pool = self._pool
        if pool:
            ctx = pool.pop()
            ctx.trace_id = trace_id
            ctx.sampled = True
            ctx.start = start
            ctx.flags = 0
            return ctx
        return TraceContext(trace_id, True, start)

    def shadow(self, start: float) -> TraceContext:
        """A shadow (tail-capture) context for a query entering the dispatch
        path unsampled.

        No trace id is allocated here — shadow contexts that finish boring
        are recycled without ever owning an id; :meth:`finish` assigns one
        only when the trace commits.
        """
        pool = self._pool
        if pool:
            ctx = pool.pop()
            ctx.trace_id = None
            ctx.sampled = False
            ctx.start = start
            ctx.flags = 0
            return ctx
        return TraceContext(None, False, start)

    def finish(
        self,
        ctx: TraceContext,
        slo_missed: bool = False,
        default_used: bool = False,
        error: bool = False,
        query_id: Optional[int] = None,
    ) -> Optional[str]:
        """Close a trace: commit it (returning its string id) or recycle it.

        Sampled traces always commit; shadow traces commit only when their
        flags say the query was interesting.  Recycled contexts go back to
        the pool, so the boring shadow path allocates nothing steady-state.
        """
        flags = ctx.flags
        if slo_missed:
            flags |= TRACE_SLO_MISS
        if default_used:
            flags |= TRACE_DEFAULT_USED
        if error:
            flags |= TRACE_ERROR
        if not flags and not ctx.sampled:
            ctx.spans.clear()
            pool = self._pool
            if len(pool) < _POOL_LIMIT:
                pool.append(ctx)
            return None
        raw_id = ctx.trace_id
        if raw_id is None:
            # Shadow contexts own an id only once they commit.
            raw_id = next(_TRACE_IDS)
        trace_id = format_trace_id(raw_id)
        record = TraceRecord(
            trace_id=trace_id,
            component=self._component,
            start=ctx.start,
            end=time.monotonic(),
            flags=flags,
            spans=ctx.spans,
            sampled=ctx.sampled,
            query_id=query_id,
        )
        self.registry.commit(record)
        if ctx.sampled and self._stage_family is not None:
            labels = self._stage_family.labels
            for name, s0, s1, _meta in ctx.spans:
                labels(name).observe((s1 - s0) * 1000.0)
        # The record owns the spans list now; the context is NOT recycled, so
        # late span appends (a straggler's RPC legs) still reach the record.
        return trace_id

    def capture_event(
        self,
        name: str,
        meta: Optional[dict] = None,
        flags: int = 0,
        component: Optional[str] = None,
    ) -> Optional[str]:
        """Commit a standalone single-span event trace (always captured).

        Used for decisions that have no carrying query — e.g. canary
        auto-aborts — so they are queryable next to request traces.
        """
        if not self._enabled:
            return None
        now = time.monotonic()
        trace_id = format_trace_id(next(_TRACE_IDS))
        record = TraceRecord(
            trace_id=trace_id,
            component=component or self._component,
            start=now,
            end=now,
            flags=flags,
            spans=[(name, now, now, meta)],
            sampled=False,
        )
        self.registry.commit(record)
        return trace_id
