"""Exact LRU cache, used as a comparison policy for the prediction cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, List

from repro.core.exceptions import CacheError


class LRUCache:
    """Fixed-capacity mapping with exact least-recently-used eviction."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CacheError("LRUCache capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value and mark it most-recently used."""
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or update ``key``, evicting the least-recently-used entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return
        if len(self._data) >= self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = value

    def keys(self) -> List[Hashable]:
        """Keys from least- to most-recently used."""
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()
