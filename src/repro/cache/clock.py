"""CLOCK cache eviction — the paper's prediction-cache policy.

CLOCK approximates LRU with a circular buffer of entries, each carrying a
reference bit.  On a hit the reference bit is set; on eviction the clock
hand sweeps forward, clearing reference bits until it finds an entry whose
bit is already clear, which is the victim.  This gives near-LRU behaviour
with O(1) amortized updates and no per-access reordering, which is why the
paper (citing Corbató's original Multics experiment) uses it for the
prediction cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List

from repro.core.exceptions import CacheError


@dataclass
class _ClockEntry:
    key: Hashable
    value: Any
    # New entries start unreferenced: an entry earns its "second chance" only
    # once it has actually been hit, so a referenced entry always outlives
    # never-accessed ones during a sweep.
    referenced: bool = False


class ClockCache:
    """Fixed-capacity mapping with CLOCK (second-chance) eviction.

    The public surface mirrors a small dict: ``get``, ``put``, ``__contains__``
    and ``__len__``.  Eviction only happens on ``put`` when the cache is full.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CacheError("ClockCache capacity must be >= 1")
        self.capacity = capacity
        self._entries: List[_ClockEntry] = []
        self._index: Dict[Hashable, int] = {}
        self._hand = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value, marking the entry as recently referenced."""
        slot = self._index.get(key)
        if slot is None:
            return default
        entry = self._entries[slot]
        entry.referenced = True
        return entry.value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or update ``key``; evicts via the clock hand when full."""
        slot = self._index.get(key)
        if slot is not None:
            entry = self._entries[slot]
            entry.value = value
            entry.referenced = True
            return
        if len(self._entries) < self.capacity:
            self._index[key] = len(self._entries)
            self._entries.append(_ClockEntry(key=key, value=value))
            return
        victim_slot = self._advance_hand()
        victim = self._entries[victim_slot]
        del self._index[victim.key]
        self._entries[victim_slot] = _ClockEntry(key=key, value=value)
        self._index[key] = victim_slot
        self.evictions += 1

    def _advance_hand(self) -> int:
        """Sweep the clock hand until an unreferenced entry is found."""
        while True:
            entry = self._entries[self._hand]
            slot = self._hand
            self._hand = (self._hand + 1) % self.capacity
            if entry.referenced:
                entry.referenced = False
            else:
                return slot

    def keys(self) -> List[Hashable]:
        """Keys currently resident, in slot order."""
        return [entry.key for entry in self._entries]

    def clear(self) -> None:
        self._entries.clear()
        self._index.clear()
        self._hand = 0
