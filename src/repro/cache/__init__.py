"""Prediction cache (paper §4.2): CLOCK/LRU eviction, request/fetch API."""

from repro.cache.clock import ClockCache
from repro.cache.lru import LRUCache
from repro.cache.prediction_cache import CacheStats, PredictionCache

__all__ = ["ClockCache", "LRUCache", "PredictionCache", "CacheStats"]
