"""The Clipper prediction cache (paper §4.2).

The cache memoises the generic prediction function
``Predict(m: ModelId, x: X) -> y: Y``: entries are keyed by the pair
(model id, input hash).  Two properties from the paper are preserved:

* A **non-blocking request/fetch API**.  ``request`` registers interest in a
  (model, input) pair and returns whether the value is already present;
  ``fetch`` returns the value if present without side effects.  The serving
  engine calls ``request`` before enqueueing work and ``put`` when the model
  container responds.
* The cache also **accelerates feedback processing**: when feedback arrives,
  the selection layer needs the predictions each model made for that input.
  A cache hit avoids re-evaluating every model in the ensemble, which is the
  source of the paper's 1.6× feedback-throughput improvement.

Hot-path API
------------
The serving engine hashes each query input **once** (via
:meth:`repro.core.types.Query.input_hash`) and talks to the cache through the
by-hash entry points — :meth:`PredictionCache.fetch_by_hash` and
:meth:`PredictionCache.put_by_hash` — so an ensemble of *N* models costs one
hash plus *N* dict probes instead of *N* (or 2·*N*, counting inserts) hash
passes.  :meth:`fetch` and :meth:`put` remain as conveniences that hash and
delegate.  The internal lock is held only around the underlying cache
structure's get/put and the stats update; key construction and hashing happen
outside it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from repro.cache.clock import ClockCache
from repro.cache.lru import LRUCache
from repro.core.exceptions import CacheError
from repro.core.types import ModelId, hash_input

CacheKey = Tuple[str, str]

#: Shared miss sentinel — allocated once instead of per lookup.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters for one prediction cache."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PredictionCache:
    """Per-model prediction cache with CLOCK or LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of (model, input) entries held; 0 disables caching
        entirely (every lookup misses, every put is dropped).
    eviction:
        ``"clock"`` (paper default) or ``"lru"``.
    """

    def __init__(self, capacity: int = 65536, eviction: str = "clock") -> None:
        if capacity < 0:
            raise CacheError("capacity must be non-negative")
        if eviction not in {"clock", "lru"}:
            raise CacheError("eviction must be 'clock' or 'lru'")
        self.capacity = capacity
        self.eviction = eviction
        self.stats = CacheStats()
        self._lock = threading.Lock()
        if capacity == 0:
            self._cache = None
        elif eviction == "clock":
            self._cache = ClockCache(capacity)
        else:
            self._cache = LRUCache(capacity)

    @property
    def enabled(self) -> bool:
        return self._cache is not None

    @staticmethod
    def make_key(model_id: Union[ModelId, str], x: Any) -> CacheKey:
        """Build the cache key for a model id and raw input."""
        return (str(model_id), hash_input(x))

    def request(self, model_id: Union[ModelId, str], x: Any) -> bool:
        """Non-blocking request: returns True when the prediction is cached.

        Mirrors the paper's ``request`` call, which "notifies the cache to
        compute the prediction if it is not already present and returns a
        boolean indicating whether the entry is in the cache".  The actual
        computation is triggered by the caller when this returns ``False``.
        """
        return self.fetch(model_id, x) is not None

    def fetch(self, model_id: Union[ModelId, str], x: Any) -> Optional[Any]:
        """Return the cached prediction or ``None``; counts a hit or miss.

        Hashes ``x`` and delegates to :meth:`fetch_by_hash`; callers that
        issue several lookups for one input should hash once themselves.
        """
        if self._cache is None:
            with self._lock:
                self.stats.misses += 1
            return None
        return self.fetch_by_hash(model_id, hash_input(x))

    def fetch_by_hash(self, model_id: Union[ModelId, str], input_hash: str) -> Optional[Any]:
        """Fetch using a precomputed input hash (the hot-path entry point)."""
        if self._cache is None:
            with self._lock:
                self.stats.misses += 1
            return None
        key = (str(model_id), input_hash)
        with self._lock:
            value = self._cache.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return value

    def put(self, model_id: Union[ModelId, str], x: Any, y: Any) -> None:
        """Insert a model prediction for an input (hashes ``x`` first)."""
        if self._cache is None:
            return
        self.put_by_hash(model_id, hash_input(x), y)

    def put_by_hash(self, model_id: Union[ModelId, str], input_hash: str, y: Any) -> None:
        """Insert using a precomputed input hash (the hot-path entry point)."""
        if self._cache is None:
            return
        key = (str(model_id), input_hash)
        with self._lock:
            self._cache.put(key, y)
            self.stats.inserts += 1

    def __len__(self) -> int:
        return 0 if self._cache is None else len(self._cache)

    def clear(self) -> None:
        if self._cache is not None:
            with self._lock:
                self._cache.clear()
        self.stats = CacheStats()
