"""Simulated FIFO resources (GPUs, network links).

A :class:`FifoResource` serves jobs one at a time in arrival order; callers
ask when a job submitted at time ``t`` with a given service time would
complete, and the resource tracks its own busy horizon.  Both GPU replicas
and shared network links are modelled this way — a link's "service time" is
the transfer time of the message at the link bandwidth.
"""

from __future__ import annotations



class FifoResource:
    """Single-server FIFO queue tracked by its next-free time."""

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0
        self.jobs_served = 0

    def submit(self, arrival_time: float, service_time: float) -> float:
        """Enqueue a job arriving at ``arrival_time``; returns its completion time."""
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        start = max(arrival_time, self.free_at)
        completion = start + service_time
        self.free_at = completion
        self.busy_time += service_time
        self.jobs_served += 1
        return completion

    def utilization(self, horizon: float) -> float:
        """Fraction of the time up to ``horizon`` the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_time / horizon, 1.0)


class Link(FifoResource):
    """A network link with a fixed bandwidth and per-message latency."""

    def __init__(
        self, bandwidth_gbps: float, latency_ms: float = 0.05, name: str = "link"
    ) -> None:
        super().__init__(name=name)
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        self.bandwidth_gbps = bandwidth_gbps
        self.latency_ms = latency_ms

    def transfer_time_s(self, num_bytes: int) -> float:
        """Serialization time of ``num_bytes`` on this link (excluding latency)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        bits = num_bytes * 8.0
        return bits / (self.bandwidth_gbps * 1e9)

    def transmit(self, arrival_time: float, num_bytes: int) -> float:
        """Send a message; returns the time it is fully delivered."""
        completion = self.submit(arrival_time, self.transfer_time_s(num_bytes))
        return completion + self.latency_ms / 1000.0
