"""Discrete-event simulation substrate for cluster-scale experiments.

The Figure 6 experiment (replicating model containers across a four-node GPU
cluster behind 10 Gbps and 1 Gbps switches) cannot run on a single laptop,
so it is reproduced on a discrete-event simulator: GPU replicas are servers
with calibrated batch latency models, remote replicas share the serving
host's NIC, and the simulation measures aggregate/mean throughput and
latency as replicas are added — reproducing the linear scaling at 10 Gbps
and the network saturation at 1 Gbps.
"""

from repro.simulation.events import EventSimulator
from repro.simulation.resources import FifoResource
from repro.simulation.latency_models import LinearBatchLatencyModel
from repro.simulation.cluster import ClusterScalingResult, simulate_cluster_scaling

__all__ = [
    "EventSimulator",
    "FifoResource",
    "LinearBatchLatencyModel",
    "ClusterScalingResult",
    "simulate_cluster_scaling",
]
