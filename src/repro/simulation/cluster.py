"""Cluster scaling simulation (Figure 6).

The experiment: a Clipper host serves an expensive GPU-backed model and adds
container replicas one machine at a time.  The first replica is local to the
host (no network hop); additional replicas are remote, and every remote batch
must traverse the host's NIC, whose bandwidth is shared by all remote
replicas.  With a 10 Gbps NIC the GPUs stay the bottleneck and aggregate
throughput scales nearly linearly (the paper measures 19.5K → 77K qps from 1
to 4 replicas); with a 1 Gbps NIC the network saturates as soon as a second,
remote replica is added and aggregate throughput plateaus.

The simulation is closed-loop: each replica keeps a bounded number of
batches in flight (the paper notes both systems use queueing to keep the GPU
saturated), and we measure completed queries per simulated second plus the
per-batch latency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.simulation.events import EventSimulator
from repro.simulation.latency_models import LinearBatchLatencyModel
from repro.simulation.resources import FifoResource, Link


@dataclass
class ClusterScalingResult:
    """Measurements for one (replica count, link speed) configuration."""

    num_replicas: int
    link_gbps: float
    aggregate_throughput_qps: float
    mean_replica_throughput_qps: float
    mean_latency_ms: float
    p99_latency_ms: float
    nic_utilization: float
    per_replica_throughput_qps: List[float] = field(default_factory=list)


def simulate_cluster_scaling(
    num_replicas: int,
    link_gbps: float,
    batch_size: int = 64,
    input_bytes: int = 12288,
    single_replica_qps: float = 19500.0,
    pipeline_depth: int = 2,
    duration_s: float = 2.0,
    link_latency_ms: float = 0.05,
    jitter_fraction: float = 0.05,
    random_state: Optional[int] = 0,
) -> ClusterScalingResult:
    """Simulate Clipper scaling one model across a GPU cluster.

    Parameters
    ----------
    num_replicas:
        Total container replicas; replica 0 is local to the Clipper host,
        the rest are remote and share the host NIC.
    link_gbps:
        Host NIC bandwidth (the paper compares 10 Gbps and 1 Gbps switches).
    batch_size:
        Hand-tuned batch size dispatched to every replica.
    input_bytes:
        Serialized size of one query input (the paper's CIFAR-scale inputs
        are a few KB after serialization).
    single_replica_qps:
        Calibrated throughput of one local GPU replica (paper: ≈19.5K qps).
    pipeline_depth:
        Batches kept in flight per replica to keep the GPU busy.
    duration_s:
        Simulated duration.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")

    sim = EventSimulator()
    nic = Link(bandwidth_gbps=link_gbps, latency_ms=link_latency_ms, name="host-nic")
    gpus = [FifoResource(name=f"gpu-{i}") for i in range(num_replicas)]
    latency_model = LinearBatchLatencyModel.calibrated_for_throughput(
        target_qps=single_replica_qps,
        batch_size=batch_size,
        jitter_fraction=jitter_fraction,
        random_state=random_state,
    )

    completed_queries: List[int] = [0] * num_replicas
    batch_latencies_ms: List[float] = []

    def launch_batch(replica: int) -> None:
        """Send one batch to ``replica`` and schedule its completion."""
        created_at = sim.now
        if replica == 0:
            delivered_at = created_at  # local container: no network hop
        else:
            delivered_at = nic.transmit(created_at, input_bytes * batch_size)
        service_s = latency_model.sample_latency_ms(batch_size) / 1000.0
        completion = gpus[replica].submit(delivered_at, service_s)
        # The response is tiny (a label per query); charge only link latency.
        if replica != 0:
            completion += link_latency_ms / 1000.0

        def on_complete(replica=replica, created_at=created_at) -> None:
            completed_queries[replica] += batch_size
            batch_latencies_ms.append((sim.now - created_at) * 1000.0)
            if sim.now < duration_s:
                launch_batch(replica)

        sim.schedule_at(completion, on_complete)

    for replica in range(num_replicas):
        for _ in range(pipeline_depth):
            launch_batch(replica)

    sim.run(until=duration_s)

    per_replica_qps = [count / duration_s for count in completed_queries]
    aggregate = float(sum(per_replica_qps))
    latencies = np.asarray(batch_latencies_ms) if batch_latencies_ms else np.array([0.0])
    return ClusterScalingResult(
        num_replicas=num_replicas,
        link_gbps=link_gbps,
        aggregate_throughput_qps=aggregate,
        mean_replica_throughput_qps=aggregate / num_replicas,
        mean_latency_ms=float(latencies.mean()),
        p99_latency_ms=float(np.percentile(latencies, 99)),
        nic_utilization=nic.utilization(duration_s),
        per_replica_throughput_qps=per_replica_qps,
    )


def sweep_cluster_scaling(
    replica_counts=(1, 2, 3, 4),
    link_speeds_gbps=(10.0, 1.0),
    **kwargs,
) -> Dict[float, List[ClusterScalingResult]]:
    """Run the full Figure 6 sweep: replicas × link speeds."""
    results: Dict[float, List[ClusterScalingResult]] = {}
    for link_gbps in link_speeds_gbps:
        results[link_gbps] = [
            simulate_cluster_scaling(num_replicas=n, link_gbps=link_gbps, **kwargs)
            for n in replica_counts
        ]
    return results
