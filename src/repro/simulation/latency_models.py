"""Parametric batch latency models used by the simulator.

The paper's Figure 3 measurements show a stable, near-linear relationship
between batch size and evaluation latency for every model container.  The
simulator therefore uses ``latency = base + per_item · batch_size`` with
optional multiplicative jitter, calibrated per experiment (e.g. the Figure 6
GPU containers are calibrated so one replica sustains ≈19.5K qps at its
hand-tuned batch size, matching the paper's single-node measurement).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearBatchLatencyModel:
    """Latency model ``base_ms + per_item_ms * batch_size`` with jitter."""

    def __init__(
        self,
        base_ms: float,
        per_item_ms: float,
        jitter_fraction: float = 0.0,
        random_state: Optional[int] = None,
    ) -> None:
        if base_ms < 0 or per_item_ms < 0:
            raise ValueError("latency parameters must be non-negative")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.base_ms = base_ms
        self.per_item_ms = per_item_ms
        self.jitter_fraction = jitter_fraction
        self._rng = np.random.default_rng(random_state)

    def mean_latency_ms(self, batch_size: int) -> float:
        """Expected latency of one batch of the given size."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.base_ms + self.per_item_ms * batch_size

    def sample_latency_ms(self, batch_size: int) -> float:
        """One latency draw, with multiplicative jitter when configured."""
        mean = self.mean_latency_ms(batch_size)
        if self.jitter_fraction == 0.0:
            return mean
        factor = 1.0 + self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return mean * factor

    def throughput_qps(self, batch_size: int) -> float:
        """Steady-state throughput if batches of this size run back to back."""
        return batch_size / (self.mean_latency_ms(batch_size) / 1000.0)

    @staticmethod
    def calibrated_for_throughput(
        target_qps: float,
        batch_size: int,
        base_ms: float = 2.0,
        jitter_fraction: float = 0.05,
        random_state: Optional[int] = None,
    ) -> "LinearBatchLatencyModel":
        """Build a model whose back-to-back throughput at ``batch_size`` is ``target_qps``."""
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        total_ms = batch_size / target_qps * 1000.0
        per_item_ms = max((total_ms - base_ms) / batch_size, 1e-6)
        return LinearBatchLatencyModel(
            base_ms=base_ms,
            per_item_ms=per_item_ms,
            jitter_fraction=jitter_fraction,
            random_state=random_state,
        )
