"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples on a heap; callbacks may
schedule further events.  The engine exposes virtual time through ``now`` so
simulated components never touch the wall clock, keeping runs deterministic
and instantaneous regardless of the simulated duration.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventSimulator:
    """Priority-queue driven virtual-time event loop."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds of virtual time from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute virtual time (>= now)."""
        if time < self.now:
            raise ValueError("cannot schedule an event in the past")
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in time order until the horizon or event budget is hit.

        Returns the virtual time at which the run stopped.
        """
        processed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback()
            processed += 1
            self.events_processed += 1
        else:
            if until is not None:
                self.now = max(self.now, until)
        return self.now

    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)
