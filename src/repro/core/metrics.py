"""Lightweight metrics registry used throughout the serving stack.

Clipper reports throughput and latency distributions (mean, P99) for every
experiment in the paper.  This module provides the metric primitives
needed to regenerate those numbers — :class:`Counter`, :class:`Meter`
(events/second over a window), :class:`Histogram` (reservoir of recent
observations with quantile queries) and :class:`Gauge` (point-in-time
values such as queue saturation) — plus a :class:`MetricsRegistry` that
names and aggregates them.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List

import numpy as np


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Meter:
    """Tracks the rate of events per second since creation or last reset."""

    def __init__(self, name: str, clock=time.monotonic) -> None:
        self.name = name
        self._clock = clock
        self._count = 0
        self._start = clock()
        self._lock = threading.Lock()

    def mark(self, count: int = 1) -> None:
        """Record ``count`` events."""
        with self._lock:
            self._count += count

    @property
    def count(self) -> int:
        return self._count

    def rate(self) -> float:
        """Mean events per second since the meter was created or reset."""
        elapsed = self._clock() - self._start
        if elapsed <= 0:
            return 0.0
        return self._count / elapsed

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._start = self._clock()


class Histogram:
    """Sliding-window reservoir of observations supporting quantile queries."""

    def __init__(self, name: str, window_size: int = 16384) -> None:
        self.name = name
        self._window: Deque[float] = deque(maxlen=window_size)
        self._lock = threading.Lock()
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation.  NaN values are rejected (dropped)."""
        value = float(value)
        if value != value:  # NaN check without a math.isnan call
            return
        with self._lock:
            self._window.append(value)
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def values(self) -> List[float]:
        with self._lock:
            return list(self._window)

    def mean(self) -> float:
        values = self.values()
        if not values:
            return float("nan")
        return float(np.mean(values))

    def std(self) -> float:
        values = self.values()
        if not values:
            return float("nan")
        return float(np.std(values))

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0-100) of the windowed observations."""
        values = self.values()
        if not values:
            return float("nan")
        return float(np.percentile(values, q))

    def p50(self) -> float:
        return self.percentile(50)

    def p95(self) -> float:
        return self.percentile(95)

    def p99(self) -> float:
        return self.percentile(99)

    def max(self) -> float:
        values = self.values()
        return max(values) if values else float("nan")

    def reset(self) -> None:
        with self._lock:
            self._window.clear()
            self._count = 0


class Gauge:
    """A point-in-time value: set explicitly or computed by a callback at read.

    Callback gauges (``fn``) are the cheap way to expose pressure signals —
    queue saturation, admission inflight — without the producer paying
    anything per event: the value is computed only when a scrape or snapshot
    reads it.
    """

    def __init__(self, name: str, fn=None) -> None:
        self.name = name
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value (ignored for callback gauges)."""
        self._value = float(value)

    def bind(self, fn) -> None:
        """(Re)bind the callback computing this gauge's value.

        Metrics are never removed from a registry, so a producer that is
        rebuilt under the same name (e.g. a model redeployed after undeploy)
        rebinds its gauge instead of reading the dead predecessor forever.
        """
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return float("nan")
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class ArmMetrics:
    """Cached metric handles attributing traffic to one serving arm.

    The routing layer resolves one of these per traffic-split arm when a
    split is installed, so the per-query attribution on the hot path is two
    counter increments and one histogram observation against pre-resolved
    handles — no registry lookups.  The derived readings (:meth:`error_rate`,
    :meth:`p99`) are what the canary controller compares between arms.
    """

    __slots__ = ("prefix", "requests", "errors", "latency")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self.prefix = prefix
        self.requests = registry.counter(f"{prefix}.requests")
        self.errors = registry.counter(f"{prefix}.errors")
        self.latency = registry.histogram(f"{prefix}.latency_ms")

    def observe(self, latency_ms: float, ok: bool = True) -> None:
        """Attribute one query served by this arm."""
        self.requests.increment()
        if ok:
            self.latency.observe(latency_ms)
        else:
            self.errors.increment()

    def error_rate(self) -> float:
        """Fraction of attributed queries that failed (0.0 when unobserved)."""
        total = self.requests.value
        if total <= 0:
            return 0.0
        return self.errors.value / total

    def p99(self) -> float:
        """P99 latency of the arm's successful queries (NaN when unobserved)."""
        return self.latency.p99()


class MetricFamily:
    """Label-addressed bundle of child metrics sharing one base name.

    Extends PR 1's construction-time-handle discipline to labelled metrics:
    ``family.labels("queue_wait")`` hashes the composed child name
    (``base{stage="queue_wait"}``) exactly once and memoises the handle, so
    per-query observations against a stage histogram are a plain dict hit
    plus the observation — never an f-string or registry probe.

    Children are registered in the owning registry under their composed
    name, so they appear in snapshots and the Prometheus exposition like
    any other metric.
    """

    __slots__ = ("name", "label", "_children", "_create")

    def __init__(self, registry: "MetricsRegistry", name: str, label: str, kind: str, **kwargs) -> None:
        self.name = name
        self.label = label
        self._children: Dict[str, object] = {}
        if kind == "counter":
            self._create = registry.counter
        elif kind == "meter":
            self._create = registry.meter
        elif kind == "histogram":
            window_size = kwargs.get("window_size", 16384)
            self._create = lambda n: registry.histogram(n, window_size)
        elif kind == "gauge":
            self._create = registry.gauge
        else:
            raise ValueError(f"unknown metric family kind: {kind!r}")

    def labels(self, value: str):
        """The child metric for one label value (created and cached on first use)."""
        child = self._children.get(value)
        if child is not None:
            return child
        child = self._create(f'{self.name}{{{self.label}="{value}"}}')
        self._children[value] = child
        return child

    def children(self) -> Dict[str, object]:
        """Label value → child metric, for introspection."""
        return dict(self._children)


@dataclass
class MetricsSnapshot:
    """Immutable snapshot of every metric in a registry."""

    counters: Dict[str, int]
    meters: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]
    gauges: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """Render the snapshot as a human-readable multi-line string."""
        lines = []
        for name, value in sorted(self.counters.items()):
            lines.append(f"counter {name} = {value}")
        for name, rate in sorted(self.meters.items()):
            lines.append(f"meter {name} = {rate:.1f}/s")
        for name, value in sorted(self.gauges.items()):
            lines.append(f"gauge {name} = {value:.3f}")
        for name, stats in sorted(self.histograms.items()):
            rendered = ", ".join(f"{k}={v:.3f}" for k, v in stats.items())
            lines.append(f"histogram {name}: {rendered}")
        return "\n".join(lines)


class MetricsRegistry:
    """Named collection of counters, meters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._meters: Dict[str, Meter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._families: Dict[tuple, MetricFamily] = {}
        self._lock = threading.Lock()

    # The getters take a lock-free fast path for already-registered names:
    # dict reads are atomic under the GIL and metrics are never removed, so
    # the lock is only needed to serialise first-time creation.  Hot-path
    # callers should still resolve handles once and reuse them (as
    # ``Clipper`` and ``ReplicaDispatcher`` do) rather than looking up by
    # name per observation.

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter with ``name``."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def meter(self, name: str) -> Meter:
        """Return (creating if needed) the meter with ``name``."""
        meter = self._meters.get(name)
        if meter is not None:
            return meter
        with self._lock:
            if name not in self._meters:
                self._meters[name] = Meter(name)
            return self._meters[name]

    def histogram(self, name: str, window_size: int = 16384) -> Histogram:
        """Return (creating if needed) the histogram with ``name``."""
        histogram = self._histograms.get(name)
        if histogram is not None:
            return histogram
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, window_size)
            return self._histograms[name]

    def gauge(self, name: str, fn=None) -> Gauge:
        """Return (creating if needed) the gauge with ``name``.

        ``fn``, when given on first registration, makes this a callback
        gauge whose value is computed at read time.
        """
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, fn)
            return self._gauges[name]

    def arm(self, prefix: str) -> ArmMetrics:
        """Resolve the request/error/latency handle bundle for one arm."""
        return ArmMetrics(self, prefix)

    def _family(self, kind: str, name: str, label: str, **kwargs) -> MetricFamily:
        key = (kind, name, label)
        family = self._families.get(key)
        if family is not None:
            return family
        with self._lock:
            if key not in self._families:
                self._families[key] = MetricFamily(self, name, label, kind, **kwargs)
            return self._families[key]

    def counter_family(self, name: str, label: str = "stage") -> MetricFamily:
        """A ``labels()``-addressed counter family under ``name``."""
        return self._family("counter", name, label)

    def gauge_family(self, name: str, label: str = "stage") -> MetricFamily:
        """A ``labels()``-addressed gauge family under ``name``."""
        return self._family("gauge", name, label)

    def meter_family(self, name: str, label: str = "stage") -> MetricFamily:
        """A ``labels()``-addressed meter family under ``name``."""
        return self._family("meter", name, label)

    def histogram_family(
        self, name: str, label: str = "stage", window_size: int = 16384
    ) -> MetricFamily:
        """A ``labels()``-addressed histogram family under ``name``."""
        return self._family("histogram", name, label, window_size=window_size)

    def all_metrics(self):
        """Raw metric objects by kind — used by the Prometheus renderer."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._meters),
                dict(self._histograms),
                dict(self._gauges),
            )

    def snapshot(self) -> MetricsSnapshot:
        """Capture the current value of every registered metric."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            meters = {n: m.rate() for n, m in self._meters.items()}
            histograms = {}
            for name, hist in self._histograms.items():
                if hist.count == 0:
                    histograms[name] = {"count": 0.0}
                else:
                    histograms[name] = {
                        "count": float(hist.count),
                        "mean": hist.mean(),
                        "p50": hist.p50(),
                        "p95": hist.p95(),
                        "p99": hist.p99(),
                        "max": hist.max(),
                    }
            gauges = {n: g.value for n, g in self._gauges.items()}
        return MetricsSnapshot(
            counters=counters, meters=meters, histograms=histograms, gauges=gauges
        )

    def reset(self) -> None:
        """Reset every metric in place (names are preserved)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for meter in self._meters.values():
                meter.reset()
            for histogram in self._histograms.values():
                histogram.reset()
            for gauge in self._gauges.values():
                gauge.reset()


def summarize_latencies(latencies_ms: Iterable[float]) -> Dict[str, float]:
    """Summary statistics (mean/p50/p95/p99/max) for a latency sample in ms."""
    values = np.asarray(list(latencies_ms), dtype=float)
    if values.size == 0:
        nan = float("nan")
        return {"count": 0, "mean": nan, "p50": nan, "p95": nan, "p99": nan, "max": nan}
    return {
        "count": int(values.size),
        "mean": float(values.mean()),
        "p50": float(np.percentile(values, 50)),
        "p95": float(np.percentile(values, 95)),
        "p99": float(np.percentile(values, 99)),
        "max": float(values.max()),
    }


def throughput_qps(num_queries: int, elapsed_seconds: float) -> float:
    """Queries per second, guarding against a zero-length interval."""
    if elapsed_seconds <= 0:
        return 0.0 if num_queries == 0 else math.inf
    return num_queries / elapsed_seconds
