"""Exception hierarchy for the Clipper reproduction.

Every error raised by the library derives from :class:`ClipperError` so that
applications can install a single catch-all handler around the serving path.
"""

from __future__ import annotations


class ClipperError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ClipperError):
    """Raised when a configuration object is internally inconsistent."""


class DeploymentError(ClipperError):
    """Raised when a model cannot be deployed (duplicate name, bad container)."""


class ContainerError(ClipperError):
    """Raised when a model container fails while evaluating a batch."""

    def __init__(self, model_id: str, message: str) -> None:
        super().__init__(f"container for model '{model_id}' failed: {message}")
        self.model_id = model_id


class RpcError(ClipperError):
    """Raised when the RPC layer fails to complete a request."""


class SerializationError(RpcError):
    """Raised when a message cannot be encoded or decoded."""


class PredictionTimeoutError(ClipperError):
    """Raised when a prediction misses its latency deadline and no default exists."""

    def __init__(self, query_id: int, deadline_ms: float) -> None:
        super().__init__(
            f"query {query_id} missed its latency deadline of {deadline_ms:.1f} ms"
        )
        self.query_id = query_id
        self.deadline_ms = deadline_ms


class SelectionPolicyError(ClipperError):
    """Raised when a selection policy is misused or misconfigured."""


class CacheError(ClipperError):
    """Raised when the prediction cache is misconfigured."""


class StateStoreError(ClipperError):
    """Raised by the key-value state store on invalid operations."""


class ManagementError(ClipperError):
    """Raised by the management plane (registry conflicts, invalid lifecycle ops)."""


class RoutingError(ClipperError):
    """Raised by the routing layer (invalid splits, canary lifecycle misuse)."""
