"""Exception hierarchy for the Clipper reproduction.

Every error raised by the library derives from :class:`ClipperError` so that
applications can install a single catch-all handler around the serving path.

Each class additionally carries the structured error model used by the REST
surface (:mod:`repro.api`): a stable machine-readable ``code`` and the HTTP
``http_status`` the error maps to at the boundary.  In-process callers catch
the exception types; HTTP callers receive ``{"error": {"code", "status",
"message", "detail"}}`` built from the same attributes, so both surfaces
report identical failures.  Instances may attach a ``detail`` dict with
error-specific context (e.g. the expected and received input shape).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ClipperError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Stable machine-readable error code crossing the API boundary.
    code: str = "internal"
    #: HTTP status the error maps to at the REST edge.
    http_status: int = 500

    def __init__(self, *args: object, detail: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(*args)
        self.detail: Dict[str, Any] = dict(detail or {})


class ConfigurationError(ClipperError):
    """Raised when a configuration object is internally inconsistent."""

    code = "invalid_configuration"
    http_status = 400


class DeploymentError(ClipperError):
    """Raised when a model cannot be deployed (duplicate name, bad container)."""

    code = "deployment_conflict"
    http_status = 409


class ContainerError(ClipperError):
    """Raised when a model container fails while evaluating a batch."""

    code = "container_failure"
    http_status = 502

    def __init__(self, model_id: str, message: str) -> None:
        super().__init__(f"container for model '{model_id}' failed: {message}")
        self.model_id = model_id
        self.detail = {"model": model_id}


class RpcError(ClipperError):
    """Raised when the RPC layer fails to complete a request."""

    code = "rpc_failure"
    http_status = 502


class SerializationError(RpcError):
    """Raised when a message cannot be encoded or decoded."""

    code = "serialization_failure"


class PredictionTimeoutError(ClipperError):
    """Raised when a prediction misses its latency deadline and no default exists."""

    code = "deadline_missed"
    http_status = 504

    def __init__(self, query_id: int, deadline_ms: float) -> None:
        super().__init__(
            f"query {query_id} missed its latency deadline of {deadline_ms:.1f} ms"
        )
        self.query_id = query_id
        self.deadline_ms = deadline_ms
        self.detail = {"query_id": query_id, "deadline_ms": deadline_ms}


class OverloadError(ClipperError):
    """Raised when admission control sheds a query under overload.

    Maps to HTTP 429 at the REST edge; ``retry_after_s`` is surfaced as the
    ``Retry-After`` response header so well-behaved clients back off for the
    time the admission controller expects capacity to free up.
    """

    code = "overloaded"
    http_status = 429

    def __init__(
        self,
        message: str = "application is overloaded",
        retry_after_s: float = 1.0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, detail=detail)
        self.retry_after_s = float(retry_after_s)
        self.detail.setdefault("retry_after_s", self.retry_after_s)


class SelectionPolicyError(ClipperError):
    """Raised when a selection policy is misused or misconfigured."""

    code = "selection_policy_error"


class CacheError(ClipperError):
    """Raised when the prediction cache is misconfigured."""

    code = "cache_error"


class StateStoreError(ClipperError):
    """Raised by the key-value state store on invalid operations."""

    code = "state_store_error"


class ManagementError(ClipperError):
    """Raised by the management plane (registry conflicts, invalid lifecycle ops)."""

    code = "management_conflict"
    http_status = 409


class RoutingError(ClipperError):
    """Raised by the routing layer (invalid splits, canary lifecycle misuse)."""

    code = "routing_conflict"
    http_status = 409


class BadRequestError(ClipperError):
    """Raised when a request crossing the API boundary is structurally malformed.

    Covers everything that fails before the application schema is even
    consulted: a body that is not a JSON object, a missing required field, a
    field of the wrong JSON type.
    """

    code = "malformed_request"
    http_status = 400


class ValidationError(ClipperError):
    """Raised when a request input violates the application's declared schema.

    Distinct from :class:`BadRequestError`: the request was well-formed, but
    its input does not conform to the application's registered input type or
    shape (HTTP 422, unprocessable content).
    """

    code = "invalid_input"
    http_status = 422


class UnknownApplicationError(ManagementError):
    """Raised when a request names an application no frontend hosts.

    Raised by both the query and the management frontend (it subclasses
    :class:`ManagementError` so operator tooling keeps one catch point); maps
    to HTTP 404 at the REST edge.
    """

    code = "unknown_application"
    http_status = 404


class DuplicateApplicationError(ManagementError):
    """Raised when registering an application name a frontend already hosts."""

    code = "duplicate_application"
    http_status = 409
