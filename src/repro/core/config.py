"""Configuration objects for the Clipper serving engine.

Configuration is split by layer: :class:`BatchingConfig` controls the model
abstraction layer's adaptive batching (§4.3), :class:`ModelDeployment`
describes one deployed model (container factory, replicas, batching policy)
and :class:`ClipperConfig` collects the application-level settings (latency
SLO, selection policy, cache sizing, straggler mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.exceptions import ConfigurationError

#: Default application latency service-level objective in milliseconds.  The
#: paper uses a 20 ms SLO for most microbenchmarks.
DEFAULT_SLO_MS = 20.0


@dataclass
class BatchingConfig:
    """Configuration of one model's adaptive batching queue.

    Parameters
    ----------
    policy:
        Batch-size control policy: ``"aimd"`` (default), ``"quantile"``,
        ``"fixed"`` or ``"none"``.
    initial_batch_size:
        Starting maximum batch size for the adaptive controllers, and the
        static size for the ``"fixed"`` policy.
    additive_increase:
        AIMD additive increment applied while batches complete under the SLO.
    backoff_fraction:
        AIMD multiplicative backoff (paper: reduce by 10% → 0.9).
    max_batch_size:
        Hard upper bound on the batch size regardless of the controller.
    batch_wait_timeout_ms:
        Delayed-batching timeout (§4.3.2): how long a dispatcher waits for
        additional queries when the queue holds fewer than the target batch.
    quantile:
        Latency quantile targeted by the quantile-regression controller.
    max_queue_depth:
        Bound on the model's batching queue (0 = unbounded, the default).
        With a bound, the overload layer's shed policy decides what happens
        when a query arrives at a full queue: reject with 429, degrade to the
        default output, or evict the entry closest to deadline expiry.
    pipeline_window:
        Maximum batches a dispatcher keeps in flight per replica (default 2):
        while one batch's RPC is outstanding, the dispatcher drains and
        encodes the next so queue-drain + serialization overlap with the
        container's evaluation.  ``1`` restores the strictly serial loop,
        which keeps the adaptive controllers' latency feedback free of
        in-container queueing time.
    """

    policy: str = "aimd"
    initial_batch_size: int = 1
    additive_increase: int = 1
    backoff_fraction: float = 0.9
    max_batch_size: int = 4096
    batch_wait_timeout_ms: float = 0.0
    quantile: float = 0.99
    quantile_window: int = 200
    max_queue_depth: int = 0
    pipeline_window: int = 2

    def __post_init__(self) -> None:
        valid = {"aimd", "quantile", "fixed", "none"}
        if self.policy not in valid:
            raise ConfigurationError(
                f"unknown batching policy '{self.policy}', expected one of {sorted(valid)}"
            )
        if self.initial_batch_size < 1:
            raise ConfigurationError("initial_batch_size must be >= 1")
        if not 0.0 < self.backoff_fraction <= 1.0:
            raise ConfigurationError("backoff_fraction must be in (0, 1]")
        if self.max_batch_size < self.initial_batch_size:
            raise ConfigurationError("max_batch_size must be >= initial_batch_size")
        if self.batch_wait_timeout_ms < 0:
            raise ConfigurationError("batch_wait_timeout_ms must be non-negative")
        if not 0.0 < self.quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        if self.max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be non-negative")
        if self.pipeline_window < 1:
            raise ConfigurationError("pipeline_window must be >= 1")


@dataclass
class OverloadConfig:
    """Admission-control configuration for one application.

    The admission gate sits in front of the batching queues and sheds work
    *before* it consumes engine resources — the fast, local complement to
    the slower control loops (health monitor, future autoscaler).

    Parameters
    ----------
    rate_limit_qps:
        Token-bucket refill rate in admitted queries/second (0 = unlimited).
    burst:
        Token-bucket capacity: how many queries above the sustained rate may
        be admitted back-to-back.  0 derives ``max(1, rate_limit_qps)``.
    max_concurrency:
        Maximum queries simultaneously in flight past admission
        (0 = unlimited).
    shed_policy:
        What happens to a query the gate cannot admit: ``"reject"`` raises
        :class:`~repro.core.exceptions.OverloadError` (HTTP 429 +
        ``Retry-After``), ``"degrade"`` answers immediately with the
        application's default output (``default: true`` flag set), and
        ``"drop-oldest"`` evicts the queued entry closest to deadline expiry
        to make room (falling back to reject when nothing is evictable).
    retry_after_s:
        Baseline ``Retry-After`` hint when the gate cannot compute one from
        the token bucket (e.g. pure concurrency saturation).
    """

    rate_limit_qps: float = 0.0
    burst: int = 0
    max_concurrency: int = 0
    shed_policy: str = "reject"
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_limit_qps < 0:
            raise ConfigurationError("rate_limit_qps must be non-negative")
        if self.burst < 0:
            raise ConfigurationError("burst must be non-negative")
        if self.max_concurrency < 0:
            raise ConfigurationError("max_concurrency must be non-negative")
        valid = {"reject", "degrade", "drop-oldest"}
        if self.shed_policy not in valid:
            raise ConfigurationError(
                f"unknown shed_policy '{self.shed_policy}', "
                f"expected one of {sorted(valid)}"
            )
        if self.retry_after_s <= 0:
            raise ConfigurationError("retry_after_s must be positive")


@dataclass
class CircuitBreakerConfig:
    """Per-model circuit-breaker thresholds.

    The breaker trips open when the recent error rate crosses
    ``error_rate_threshold`` (over at least ``min_samples`` of the last
    ``window`` outcomes) or after ``consecutive_timeouts`` deadline misses in
    a row.  While open, queries fast-fail to the default output instead of
    paying the model's timeout.  After ``open_duration_s`` the breaker lets
    ``half_open_probes`` trial queries trickle through: all succeeding closes
    it, any failing reopens it.
    """

    error_rate_threshold: float = 0.5
    window: int = 20
    min_samples: int = 10
    consecutive_timeouts: int = 5
    open_duration_s: float = 1.0
    half_open_probes: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ConfigurationError("error_rate_threshold must be in (0, 1]")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        if self.consecutive_timeouts < 1:
            raise ConfigurationError("consecutive_timeouts must be >= 1")
        if self.open_duration_s <= 0:
            raise ConfigurationError("open_duration_s must be positive")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")


@dataclass
class ModelDeployment:
    """Description of one model deployed behind the model abstraction layer.

    Parameters
    ----------
    name:
        Unique model name within the Clipper instance.
    container_factory:
        Zero-argument callable returning a fresh
        :class:`repro.containers.base.ModelContainer`; called once per replica
        so that replicas do not share mutable state.
    num_replicas:
        Number of container replicas (each gets its own batching queue, §4.4.1).
    batching:
        Per-model batching configuration.
    version:
        Model version; bumping the version creates a distinct :class:`ModelId`.
    serialize_rpc:
        Whether the container RPC round-trips every batch through the binary
        serializer.  True models a container written against the Python
        bindings (serialization cost paid in Python); False models a native
        (C++-style) container whose serialization cost is negligible.
    max_batch_retries:
        How many times a query may be re-enqueued after a replica fails its
        batch before the failure is surfaced to the caller.  With multiple
        replicas this lets a healthy sibling absorb the work of a sick one
        while the health monitor quarantines it.
    factory_name:
        Name of the server-side container factory this deployment was built
        from, when it came through the factory registry.  Recorded in the
        registry's deploy spec so a cold-start restore can rebuild the
        deployment; ``None`` for ad-hoc in-process factories.
    transport:
        Which RPC lane connects Clipper to this model's replicas:
        ``"inprocess"`` (default: asyncio queues, serialization controlled by
        ``serialize_rpc``), ``"shm"`` (same-host shared-memory rings, see
        :mod:`repro.rpc.shm`) or ``"tcp"`` (loopback sockets).  The shm and
        tcp lanes always serialize — they model a real container boundary.
    circuit_breaker:
        Per-model circuit-breaker thresholds, overriding the application's
        :attr:`ClipperConfig.breaker` default.  ``None`` inherits the
        application-level setting (which may itself be ``None`` = no breaker).
    """

    name: str
    container_factory: Callable[[], object]
    num_replicas: int = 1
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    version: int = 1
    serialize_rpc: bool = True
    max_batch_retries: int = 3
    factory_name: Optional[str] = None
    transport: str = "inprocess"
    circuit_breaker: Optional[CircuitBreakerConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("model deployment requires a non-empty name")
        if self.num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if self.max_batch_retries < 0:
            raise ConfigurationError("max_batch_retries must be non-negative")
        valid_transports = {"inprocess", "shm", "tcp"}
        if self.transport not in valid_transports:
            raise ConfigurationError(
                f"unknown transport '{self.transport}', "
                f"expected one of {sorted(valid_transports)}"
            )


@dataclass
class TracingConfig:
    """Configuration of the request-tracing layer.

    Parameters
    ----------
    enabled:
        Master switch.  When False, :meth:`Tracer.begin` returns ``None``
        after a single attribute check and every instrumentation point in
        the engine is one dead branch.
    sample_every:
        Head-sampling period: one query in every ``sample_every`` carries a
        fully-spanned, always-committed trace (default 1/256).  A
        caller-supplied trace id (``X-Clipper-Trace-Id``) forces sampling
        for that query regardless.
    tail_capture:
        When True (default), unsampled queries carry a lightweight shadow
        context that is committed only if the query turns out interesting —
        SLO miss, default-output fallback, straggler, retried batch or
        container error — so the slow tail is never lost to sampling.
    ring_capacity:
        Committed traces retained per component ring buffer.
    """

    enabled: bool = True
    sample_every: int = 256
    tail_capture: bool = True
    ring_capacity: int = 512

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ConfigurationError("sample_every must be >= 1")
        if self.ring_capacity < 1:
            raise ConfigurationError("ring_capacity must be >= 1")


@dataclass
class ClipperConfig:
    """Application-level configuration for a Clipper instance.

    Parameters
    ----------
    app_name:
        Name of the application registered with the query frontend.
    latency_slo_ms:
        Latency service-level objective; drives both adaptive batching and
        the straggler-mitigation deadline.
    selection_policy:
        Name of the selection policy: ``"exp3"``, ``"exp4"``, ``"single"``,
        ``"epsilon_greedy"`` or ``"ucb"``.
    cache_size:
        Maximum number of entries in the prediction cache (0 disables it).
    cache_eviction:
        ``"clock"`` (paper default) or ``"lru"``.
    straggler_mitigation:
        Whether to render predictions at the deadline with whatever subset of
        model predictions is available (§5.2.2).
    default_output:
        Sensible default returned when no model prediction is available by the
        deadline and the application opted into robust defaults.  When an
        ``output_type`` is declared the default is validated against it at
        construction, so a contradiction surfaces before serving starts.
    input_type:
        Declared input type of the application — ``"ints"``, ``"floats"``,
        ``"doubles"``, ``"bytes"`` or ``"strings"``, per the paper's
        application registration.  ``None`` (default) leaves the application
        untyped: inputs pass through unvalidated.  With a declared type,
        every query input — in-process or HTTP — is validated and coerced at
        the frontend edge before a ``Query`` is built.
    input_shape:
        Optional exact input shape enforced together with ``input_type``
        (e.g. ``(196,)`` for a 196-feature vector).
    output_type:
        Declared output type (same vocabulary as ``input_type``), used to
        validate ``default_output`` and reported through the admin API.
    slo_fraction_for_batching:
        Fraction of the SLO budgeted to a single batch evaluation; the rest
        covers queueing, RPC and combination overhead.
    routing_seed:
        Seed mixed into the routing layer's traffic-split assignment hash.
        Two instances with the same seed split the same key population
        identically; changing the seed re-partitions which routing keys land
        on a canary arm.
    overload:
        Admission-control configuration (:class:`OverloadConfig`).  ``None``
        (default) disables the admission gate entirely — the overload layer
        adds zero work to the serve path.
    breaker:
        Application-default circuit-breaker thresholds applied to every
        deployed model unless the deployment carries its own
        ``circuit_breaker``.  ``None`` (default) means no breakers.
    """

    app_name: str = "default-app"
    latency_slo_ms: float = DEFAULT_SLO_MS
    selection_policy: str = "exp4"
    selection_policy_kwargs: dict = field(default_factory=dict)
    cache_size: int = 65536
    cache_eviction: str = "clock"
    straggler_mitigation: bool = True
    default_output: Optional[object] = None
    input_type: Optional[str] = None
    input_shape: Optional[tuple] = None
    output_type: Optional[str] = None
    confidence_threshold: float = 0.0
    slo_fraction_for_batching: float = 1.0
    routing_seed: int = 0
    seed: Optional[int] = None
    tracing: TracingConfig = field(default_factory=TracingConfig)
    overload: Optional[OverloadConfig] = None
    breaker: Optional[CircuitBreakerConfig] = None
    # A cluster ingress boots with zero deployed models (deploys arrive over
    # the admin API); the default keeps the loud in-process failure mode.
    allow_empty_start: bool = False

    def __post_init__(self) -> None:
        if self.latency_slo_ms <= 0:
            raise ConfigurationError("latency_slo_ms must be positive")
        if self.cache_size < 0:
            raise ConfigurationError("cache_size must be non-negative")
        if self.cache_eviction not in {"clock", "lru"}:
            raise ConfigurationError("cache_eviction must be 'clock' or 'lru'")
        if not 0.0 < self.slo_fraction_for_batching <= 1.0:
            raise ConfigurationError("slo_fraction_for_batching must be in (0, 1]")
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be in [0, 1]")
        # The typed-schema vocabulary lives in the API layer; the import is
        # deferred to construction time to keep the core free of import
        # cycles (repro.api builds on repro.core).
        from repro.api.schema import check_output_value, check_type_name

        if self.input_type is not None:
            check_type_name(self.input_type)
        if self.output_type is not None:
            check_type_name(self.output_type)
        if self.input_shape is not None:
            shape = tuple(self.input_shape)
            if not shape or not all(
                isinstance(dim, int) and not isinstance(dim, bool) and dim > 0
                for dim in shape
            ):
                raise ConfigurationError(
                    "input_shape must be a non-empty tuple of positive ints"
                )
            self.input_shape = shape
            if self.input_type is None:
                raise ConfigurationError(
                    "input_shape requires a declared input_type"
                )
            if self.input_type in {"bytes", "strings"}:
                raise ConfigurationError(
                    f"input_shape does not apply to input_type '{self.input_type}'"
                )
        if self.default_output is not None and self.output_type is not None:
            check_output_value(
                self.output_type, self.default_output, what="default_output"
            )

    @property
    def batch_latency_budget_ms(self) -> float:
        """Portion of the SLO available for evaluating a single batch."""
        return self.latency_slo_ms * self.slo_fraction_for_batching
