"""Application-facing query frontend.

Applications interact with Clipper through a REST interface exposing two
operations: request a prediction, and return feedback about a prediction
(Figure 2).  The :class:`QueryFrontend` is that interface for the
reproduction: it hosts one or more applications (each backed by its own
:class:`~repro.core.clipper.Clipper` instance), validates every input
against the application's declared schema, and routes requests by
application name.  The HTTP binding (:mod:`repro.api.http`) serves this
same object through the versioned route table, so in-process and HTTP
callers cross one validation and error path — the REST API of the paper,
with or without the HTTP framing.

Both frontends share :class:`ApplicationHost` (the name→instance registry
plus per-application :class:`~repro.api.schema.ApplicationSchema`) and the
module-level :func:`start_applications`/:func:`stop_applications` lifecycle
helpers, which the HTTP server also reuses for startup/shutdown.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

from repro.api.schema import ApplicationSchema
from repro.core.clipper import Clipper
from repro.core.exceptions import (
    ClipperError,
    DuplicateApplicationError,
    UnknownApplicationError,
)
from repro.core.types import Feedback, Prediction, Query


async def start_applications(applications: Mapping[str, Clipper]) -> None:
    """Start a collection of applications all-or-nothing, in name order.

    Applications start in sorted-name order (deterministic whatever mapping
    they arrive in).  If one fails to start, the ones already brought up are
    stopped again in reverse order before the error propagates, so a failed
    start never leaks running replicas.  Shared by the query and management
    frontends and the HTTP server's startup.
    """
    started = []
    try:
        for app_name in sorted(applications):
            clipper = applications[app_name]
            await clipper.start()
            started.append(clipper)
    except BaseException:
        for clipper in reversed(started):
            try:
                await clipper.stop()
            except Exception:
                pass  # the original start failure is the error to surface
        raise


async def stop_applications(applications: Mapping[str, Clipper]) -> None:
    """Stop every application in reverse name order, collecting errors.

    The mirror image of :func:`start_applications` — same signature, same
    deterministic ordering, reversed.  One application failing to stop does
    not strand the others; the collected errors are re-raised together as
    one :class:`ClipperError`.
    """
    errors = []
    for app_name in sorted(applications, reverse=True):
        try:
            await applications[app_name].stop()
        except Exception as exc:
            errors.append(f"{app_name}: {exc}")
    if errors:
        raise ClipperError("failed to stop application(s): " + "; ".join(errors))


class ApplicationHost:
    """Shared application registry behind the query and management frontends.

    Owns the name→:class:`Clipper` mapping and the per-application
    :class:`ApplicationSchema` derived at registration, so both frontends —
    and through them both transports — resolve applications and validate
    inputs identically.
    """

    def __init__(self) -> None:
        self._applications: Dict[str, Clipper] = {}
        self._schemas: Dict[str, ApplicationSchema] = {}

    def _host_application(self, clipper: Clipper) -> str:
        """Add an application to the host; duplicate names are rejected."""
        app_name = clipper.config.app_name
        if app_name in self._applications:
            raise DuplicateApplicationError(
                f"application '{app_name}' is already registered"
            )
        self._applications[app_name] = clipper
        self._schemas[app_name] = ApplicationSchema.from_config(clipper.config)
        return app_name

    def _unhost_application(self, app_name: str) -> None:
        self._applications.pop(app_name, None)
        self._schemas.pop(app_name, None)

    def applications(self) -> List[str]:
        """Names of every hosted application."""
        return sorted(self._applications)

    def application(self, app_name: str) -> Clipper:
        """The serving instance behind one application."""
        return self._lookup(app_name)

    def schema(self, app_name: str) -> ApplicationSchema:
        """The declared serving contract of one application."""
        self._lookup(app_name)
        return self._schemas[app_name]

    def hosted_applications(self) -> Dict[str, Clipper]:
        """The live name→instance mapping (lifecycle helpers feed on it)."""
        return self._applications

    def _lookup(self, app_name: str) -> Clipper:
        clipper = self._applications.get(app_name)
        if clipper is None:
            raise UnknownApplicationError(
                f"unknown application '{app_name}'; registered: {self.applications()}",
                detail={"registered": self.applications()},
            )
        return clipper


class QueryFrontend(ApplicationHost):
    """Routes prediction and feedback requests to registered applications."""

    def register_application(self, clipper: Clipper) -> str:
        """Register an application; the name comes from the Clipper config."""
        return self._host_application(clipper)

    async def start(self) -> None:
        """Start every registered application (all-or-nothing, name order)."""
        await start_applications(self._applications)

    async def stop(self) -> None:
        """Stop every registered application, collecting per-app errors."""
        await stop_applications(self._applications)

    async def predict(
        self,
        app_name: str,
        x: Any,
        user_id: Optional[str] = None,
        latency_slo_ms: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Prediction:
        """Render a prediction through the named application.

        The input is validated (and coerced) against the application's
        declared schema before a :class:`Query` is built — the single
        validation path shared with HTTP callers.  A caller-supplied
        ``trace_id`` (the ``X-Clipper-Trace-Id`` header) force-samples the
        query's trace; the frontend stamps the validation stage so sampled
        trace trees start at the edge, not inside the engine.
        """
        clipper = self._lookup(app_name)
        # Overload precheck: under the reject shed policy a saturated
        # admission gate refuses the request before any validation work
        # (non-consuming peek; the engine still makes the real decision).
        clipper.check_admission()
        metadata = None
        if clipper.tracer.active:
            t0 = time.monotonic()
            x = self._schemas[app_name].validate_input(x)
            t1 = time.monotonic()
            metadata = {"pre_spans": (("frontend.validate", t0, t1, None),)}
        else:
            x = self._schemas[app_name].validate_input(x)
        query = Query(
            app_name=app_name,
            input=x,
            user_id=user_id,
            latency_slo_ms=latency_slo_ms,
            trace_id=trace_id,
        )
        if metadata is not None:
            query.metadata = metadata
        return await clipper.predict(query)

    async def update(
        self,
        app_name: str,
        x: Any,
        label: Any,
        user_id: Optional[str] = None,
    ) -> None:
        """Send ground-truth feedback for an earlier prediction.

        The feedback input crosses the same schema validation as queries,
        and the label is checked against the declared output contract, so a
        malformed update cannot poison the selection state.
        """
        clipper = self._lookup(app_name)
        schema = self._schemas[app_name]
        x = schema.validate_input(x)
        label = schema.validate_label(label)
        await clipper.feedback(
            Feedback(app_name=app_name, input=x, label=label, user_id=user_id)
        )

    def app_metrics(self, app_name: str):
        """Expose the metrics snapshot of one application (monitoring hook)."""
        return self._lookup(app_name).metrics.snapshot()

    def app_routing(self, app_name: str) -> Dict[str, Dict]:
        """Expose one application's routing table: splits, canaries, rollback
        targets per model name (monitoring hook for in-flight rollouts)."""
        return self._lookup(app_name).routing.describe()
