"""Application-facing query frontend.

Applications interact with Clipper through a REST/RPC interface exposing two
operations: request a prediction, and return feedback about a prediction
(Figure 2).  The :class:`QueryFrontend` is that interface for the
reproduction: it hosts one or more applications (each backed by its own
:class:`~repro.core.clipper.Clipper` instance), validates requests, and
routes them by application name — the same role the REST API plays in the
paper, minus the HTTP framing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.clipper import Clipper
from repro.core.exceptions import ClipperError
from repro.core.types import Feedback, Prediction, Query


async def start_applications(clippers) -> None:
    """Start a collection of applications all-or-nothing.

    If one application fails to start, the ones already brought up are
    stopped again (in reverse order) before the error propagates, so a
    failed start never leaks running replicas.  Shared by the query and
    management frontends.
    """
    started = []
    try:
        for clipper in clippers:
            await clipper.start()
            started.append(clipper)
    except BaseException:
        for clipper in reversed(started):
            try:
                await clipper.stop()
            except Exception:
                pass  # the original start failure is the error to surface
        raise


async def stop_applications(applications: Dict[str, Clipper]) -> None:
    """Stop every application, collecting per-application errors.

    One application failing to stop does not strand the others; the
    collected errors are re-raised together as one :class:`ClipperError`.
    """
    errors = []
    for app_name, clipper in applications.items():
        try:
            await clipper.stop()
        except Exception as exc:
            errors.append(f"{app_name}: {exc}")
    if errors:
        raise ClipperError("failed to stop application(s): " + "; ".join(errors))


class QueryFrontend:
    """Routes prediction and feedback requests to registered applications."""

    def __init__(self) -> None:
        self._applications: Dict[str, Clipper] = {}

    def register_application(self, clipper: Clipper) -> str:
        """Register an application; the name comes from the Clipper config."""
        app_name = clipper.config.app_name
        if app_name in self._applications:
            raise ClipperError(f"application '{app_name}' is already registered")
        self._applications[app_name] = clipper
        return app_name

    def applications(self) -> List[str]:
        """Names of every registered application."""
        return sorted(self._applications)

    def _lookup(self, app_name: str) -> Clipper:
        clipper = self._applications.get(app_name)
        if clipper is None:
            raise ClipperError(
                f"unknown application '{app_name}'; registered: {self.applications()}"
            )
        return clipper

    async def start(self) -> None:
        """Start every registered application (all-or-nothing)."""
        await start_applications(self._applications.values())

    async def stop(self) -> None:
        """Stop every registered application, collecting per-app errors."""
        await stop_applications(self._applications)

    async def predict(
        self,
        app_name: str,
        x: Any,
        user_id: Optional[str] = None,
        latency_slo_ms: Optional[float] = None,
    ) -> Prediction:
        """Render a prediction through the named application."""
        clipper = self._lookup(app_name)
        query = Query(
            app_name=app_name, input=x, user_id=user_id, latency_slo_ms=latency_slo_ms
        )
        return await clipper.predict(query)

    async def update(
        self,
        app_name: str,
        x: Any,
        label: Any,
        user_id: Optional[str] = None,
    ) -> None:
        """Send ground-truth feedback for an earlier prediction."""
        clipper = self._lookup(app_name)
        await clipper.feedback(
            Feedback(app_name=app_name, input=x, label=label, user_id=user_id)
        )

    def app_metrics(self, app_name: str):
        """Expose the metrics snapshot of one application (monitoring hook)."""
        return self._lookup(app_name).metrics.snapshot()

    def app_routing(self, app_name: str) -> Dict[str, Dict]:
        """Expose one application's routing table: splits, canaries, rollback
        targets per model name (monitoring hook for in-flight rollouts)."""
        return self._lookup(app_name).routing.describe()
