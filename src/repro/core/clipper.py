"""The Clipper serving engine.

This module wires the two layers of the paper's architecture together for a
single application:

* the **model abstraction layer** — a prediction cache (§4.2), one adaptive
  batching queue per deployed model with one dispatcher per container
  replica (§4.3–4.4), and the RPC plumbing to the containers — and
* the **model selection layer** — a pluggable selection policy with
  per-context state (§5), straggler mitigation driven by the latency SLO
  (§5.2.2), and the feedback path that joins application feedback with
  cached predictions to update the policy.

The public surface is intentionally small::

    clipper = Clipper(ClipperConfig(app_name="demo", latency_slo_ms=20))
    clipper.deploy_model(ModelDeployment("svm", make_svm_container))
    await clipper.start()
    prediction = await clipper.predict(Query(app_name="demo", input=x))
    await clipper.feedback(Feedback(app_name="demo", input=x, label=y))
    await clipper.stop()

Synchronous convenience wrappers (``predict_sync`` etc.) run the coroutine
on a private event loop for scripts and tests that are not async.

Runtime mutability (the management plane's half of the paper's architecture)
is layered on top without touching the hot path: every deployed *version* of
a model keeps its own serving machinery (replica set, batching queue,
dispatchers), while **which version serves each query** is owned entirely by
the :class:`~repro.routing.table.RoutingTable` — an immutable, atomically
swapped map from model name to a weighted
:class:`~repro.routing.split.TrafficSplit` over versions.  Stable serving is
the degenerate 100/0 split; a **canary rollout** (:meth:`Clipper.start_canary`
/ :meth:`adjust_canary` / :meth:`promote` / :meth:`abort_canary`) shifts a
deterministic, seeded fraction of routing keys onto a staged version while
per-arm latency/error metrics accumulate for the promotion decision.
``rollout``/``rollback`` are thin wrappers over the same verbs.
Selection-policy state is namespaced by the routed serving set, so the state
learned for a version survives its retirement and is picked up again on
rollback; namespaces no routing configuration can reach any more are pruned.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.batching.controllers import make_controller
from repro.batching.dispatcher import ReplicaDispatcher
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.cache.prediction_cache import PredictionCache
from repro.containers.replica import ReplicaSet
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import (
    ClipperError,
    DeploymentError,
    OverloadError,
    PredictionTimeoutError,
)
from repro.core.metrics import MetricsRegistry
from repro.core.types import Feedback, ModelId, Prediction, Query
from repro.observability.tracing import (
    TRACE_ERROR,
    TRACE_STRAGGLER,
    Tracer,
)
from repro.overload import AdmissionController, CircuitBreaker
from repro.routing.split import TrafficSplit
from repro.routing.table import RoutePlan, RoutingTable, parse_namespace_keys
from repro.selection.manager import SelectionStateManager
from repro.selection.policy import make_policy
from repro.state.kvstore import KeyValueStore


#: Sentinel resolved into a pending model future when its straggler deadline
#: passes before the container answers.  A sentinel (not an exception) keeps
#: abandoned futures from logging "exception was never retrieved" and lets
#: the dispatcher distinguish "timed out, late-fill the cache when the real
#: output lands" from genuine failures.
DEADLINE_MISS = object()

#: Granularity of the straggler-deadline sweep.  Queries whose deadlines
#: fall into the same tick share one event-loop timer instead of paying a
#: ``call_later`` + cancel each; a straggler may be declared up to this much
#: late, which is far below scheduling jitter at serving load.
_SWEEP_GRAIN_S = 0.001


def _detach_output(output: Any) -> Any:
    """An output safe to retain long-term (e.g. in the prediction cache).

    The RPC decoder returns ndarray outputs as zero-copy views into the
    whole received frame; caching such a view would pin the entire
    batch-response buffer for the lifetime of one cache entry.  Views are
    copied once here; owning arrays and scalars pass through.
    """
    if isinstance(output, np.ndarray) and output.base is not None:
        return output.copy()
    return output


class _DeadlineSweeper:
    """Resolves pending futures with :data:`DEADLINE_MISS` at their deadline.

    Futures are bucketed by deadline tick; each bucket owns a single
    ``loop.call_at`` timer.  On the serving hot path this replaces one timer
    creation + cancellation per query with a dict probe and a list append —
    the timer count collapses from per-query to per-millisecond.
    """

    __slots__ = ("_buckets", "_loop")

    def __init__(self) -> None:
        self._buckets: Dict[int, List[asyncio.Future]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def register(self, future: asyncio.Future, deadline: float) -> None:
        """Arrange for ``future`` to resolve by ``deadline`` (monotonic)."""
        loop = asyncio.get_running_loop()
        if loop is not self._loop:
            # The owning Clipper moved to a new event loop (sync-wrapper
            # usage); the old loop's timers died with it.
            self._buckets = {}
            self._loop = loop
        tick = int(deadline / _SWEEP_GRAIN_S) + 1
        bucket = self._buckets.get(tick)
        if bucket is None:
            bucket = []
            self._buckets[tick] = bucket
            loop.call_at(tick * _SWEEP_GRAIN_S, self._fire, tick)
        bucket.append(future)

    def _fire(self, tick: int) -> None:
        for future in self._buckets.pop(tick, ()):
            if not future.done():
                future.set_result(DEADLINE_MISS)


class _DeployedModel:
    """Internal record of one deployed model version and its serving machinery."""

    def __init__(
        self,
        deployment: ModelDeployment,
        replica_set: ReplicaSet,
        queue: BatchingQueue,
        dispatchers: List[ReplicaDispatcher],
    ) -> None:
        self.deployment = deployment
        self.replica_set = replica_set
        self.queue = queue
        self.dispatchers = dispatchers

    @property
    def model_id(self) -> ModelId:
        return self.replica_set.model_id

    def dispatcher_for(self, replica) -> Optional[ReplicaDispatcher]:
        """The dispatcher currently draining the queue into ``replica``."""
        for dispatcher in self.dispatchers:
            if dispatcher.replica is replica:
                return dispatcher
        return None


class Clipper:
    """A Clipper serving instance for one application."""

    def __init__(
        self,
        config: Optional[ClipperConfig] = None,
        state_store: Optional[KeyValueStore] = None,
    ) -> None:
        self.config = config or ClipperConfig()
        self.metrics = MetricsRegistry()
        self.cache = PredictionCache(
            capacity=self.config.cache_size, eviction=self.config.cache_eviction
        )
        self.state_store = state_store or KeyValueStore()
        self._models: Dict[str, _DeployedModel] = {}
        # All version-resolution lives in the routing table: which version of
        # each model name serves traffic (possibly split across a canary),
        # and the previously-active version kept for rollback.  Versions
        # deployed while another is active stay staged (machinery warm, no
        # traffic) until a rollout or canary routes to them.
        self.routing = RoutingTable(
            metrics=self.metrics,
            seed=self.config.routing_seed,
            scope=self.config.app_name,
        )
        self._admin_lock = asyncio.Lock()
        # Straggler deadlines are enforced by a shared bucketed sweep (one
        # timer per millisecond tick) instead of one timer per query.
        self._sweeper = _DeadlineSweeper()
        # One selection-state manager per routed serving-set combination,
        # keyed by the routing plan's namespace and built lazily.
        self._selection_managers: Dict[str, SelectionStateManager] = {}
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Optional replica-placement seam: when set (the cluster ingress
        # installs one), each deployment may build its replica set somewhere
        # other than in-process — see :meth:`set_replica_set_factory`.
        self._replica_set_factory = None
        # Metric handles are resolved once here instead of per call: registry
        # lookups take a lock and a dict probe, which is measurable on the
        # cache-hit path that does no other work.
        self._latency_hist = self.metrics.histogram("predict.latency_ms")
        self._throughput_meter = self.metrics.meter("predict.throughput")
        self._predict_counter = self.metrics.counter("predict.count")
        self._default_counter = self.metrics.counter("predict.defaults")
        self._straggler_counter = self.metrics.counter("predict.stragglers")
        self._container_error_counter = self.metrics.counter("predict.container_errors")
        self._feedback_counter = self.metrics.counter("feedback.count")
        self._feedback_meter = self.metrics.meter("feedback.throughput")
        self._unavailable_counter = self.metrics.counter("predict.unavailable_models")
        # Overload layer.  With no OverloadConfig the admission gate is None
        # and no breaker dict entries exist, so the serve path's only cost is
        # a couple of attribute reads per query — and the cache-hit fast path
        # pays nothing at all (the gate is consulted only at a cache miss).
        overload_cfg = self.config.overload
        self._admission = (
            AdmissionController(overload_cfg) if overload_cfg is not None else None
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_transition_family = None
        self._breaker_fastfail_counter = None
        if self._admission is not None:
            shed_family = self.metrics.counter_family("overload.shed", label="policy")
            self._shed_counters = {
                "reject": shed_family.labels("reject"),
                "degrade": shed_family.labels("degrade"),
                "drop-oldest": shed_family.labels("drop-oldest"),
            }
            self.metrics.gauge("overload.saturation", fn=self._admission.saturation)
        else:
            self._shed_counters = None
        # The tracing layer follows the same handle discipline: ``begin`` is
        # bound once, and an untraced query's total tracing cost is that one
        # call returning None plus per-site ``is not None`` checks.
        self.tracer = Tracer(
            self.config.tracing, metrics=self.metrics, component="engine"
        )
        self._trace_begin = self.tracer.begin
        # Shadow (tail-capture) contexts attach only when a query leaves the
        # cache-hit path; None when tail capture can never trigger.
        self._trace_shadow = (
            self.tracer.shadow
            if self.tracer.active and self.tracer.tail_capture
            else None
        )

    # -- deployment -----------------------------------------------------------

    def set_replica_set_factory(self, factory) -> None:
        """Install a replica-placement hook for subsequent deployments.

        ``factory(deployment, model_id)`` returns a ReplicaSet-compatible
        object — e.g. a :class:`~repro.cluster.remote.RemoteReplicaSet`
        placing containers on worker daemons — or ``None`` to fall back to
        the in-process default for that deployment.  Already-deployed models
        are unaffected.
        """
        self._replica_set_factory = factory

    def _register_model(
        self, deployment: ModelDeployment, activate: Optional[bool]
    ) -> _DeployedModel:
        """Build the serving machinery for one model version (not started)."""
        model_id = ModelId(deployment.name, deployment.version)
        key = str(model_id)
        if key in self._models:
            raise DeploymentError(f"model '{key}' is already deployed")

        replica_set = None
        if self._replica_set_factory is not None:
            replica_set = self._replica_set_factory(deployment, model_id)
        if replica_set is None:
            replica_set = ReplicaSet(
                model_id=model_id,
                container_factory=deployment.container_factory,
                num_replicas=deployment.num_replicas,
                serialize_messages=deployment.serialize_rpc,
                transport=deployment.transport,
            )
        queue = BatchingQueue(name=key, maxsize=deployment.batching.max_queue_depth)
        record = _DeployedModel(deployment, replica_set, queue, [])
        record.dispatchers = [
            self._make_dispatcher(record, replica) for replica in replica_set
        ]
        self._models[key] = record
        # Pressure observability: callback gauges read the queue only at
        # scrape/snapshot time, so the enqueue path pays nothing.  ``bind``
        # repoints an existing gauge at the new queue when a key is
        # redeployed after an undeploy (metrics are never removed).
        self.metrics.gauge(f'queue.saturation{{model="{key}"}}').bind(queue.saturation)
        self.metrics.gauge(f'queue.depth{{model="{key}"}}').bind(queue.qsize)
        breaker_config = deployment.circuit_breaker or self.config.breaker
        if breaker_config is not None:
            self._breakers[key] = self._make_breaker(key, breaker_config)
        if activate is None:
            # Default: the first version of a name serves immediately; later
            # versions come up staged and wait for an explicit rollout.
            activate = self.routing.active_key(deployment.name) is None
        if activate:
            had_canary = self.routing.canary_key(deployment.name) is not None
            self.routing.activate(deployment.name, key)
            if had_canary:
                # The forced activation discarded an in-flight canary; its
                # mixed serving-set state is unreachable now.
                self._prune_selection_state()
        return record

    def _make_breaker(self, model_key: str, config) -> CircuitBreaker:
        """Build one model's circuit breaker wired into metrics + tracing."""
        if self._breaker_transition_family is None:
            self._breaker_transition_family = self.metrics.counter_family(
                "breaker.transitions", label="state"
            )
            self._breaker_fastfail_counter = self.metrics.counter(
                "overload.breaker_fastfail"
            )
        family = self._breaker_transition_family

        def on_transition(old_state: str, new_state: str) -> None:
            family.labels(new_state).increment()
            self.tracer.capture_event(
                "breaker.transition",
                meta={"model": model_key, "from": old_state, "to": new_state},
                component="overload",
            )

        return CircuitBreaker(config, on_transition=on_transition)

    def _make_dispatcher(
        self, record: _DeployedModel, replica
    ) -> ReplicaDispatcher:
        controller = make_controller(
            record.deployment.batching, slo_ms=self.config.batch_latency_budget_ms
        )
        model_key = str(record.model_id)

        def late_result_sink(item: PendingQuery, output: Any) -> None:
            # A query that missed its straggler deadline still populates the
            # prediction cache when its container output finally lands, so
            # the feedback path can join against it (§4.2 / §5.2.2).
            if item.input_hash is not None:
                self.cache.put_by_hash(
                    model_key, item.input_hash, _detach_output(output)
                )

        return ReplicaDispatcher(
            replica=replica,
            queue=record.queue,
            controller=controller,
            batch_wait_timeout_ms=record.deployment.batching.batch_wait_timeout_ms,
            metrics=self.metrics,
            max_retries=record.deployment.max_batch_retries,
            pipeline_window=record.deployment.batching.pipeline_window,
            late_result_sink=late_result_sink,
            tracer=self.tracer,
        )

    def deploy_model(
        self, deployment: ModelDeployment, activate: Optional[bool] = None
    ) -> ModelId:
        """Register a model version behind the model abstraction layer.

        May be called before or after :meth:`start`; versions deployed after
        start are brought up immediately.  The first version of a model name
        begins serving at once; a later version is *staged* (warm but not
        serving) until :meth:`rollout` or a canary routes traffic to it,
        unless ``activate=True`` forces an immediate switch.  Returns the
        assigned :class:`ModelId`.
        """
        record = self._register_model(deployment, activate)
        if self._started:
            try:
                running_loop = asyncio.get_running_loop()
            except RuntimeError:
                running_loop = None
            if running_loop is not None:
                # Deployment from async code while serving: bring the model up
                # as a background task; queries queued before it finishes wait
                # in the model's batching queue.
                running_loop.create_task(self._start_model(record))
            else:
                self._run_coroutine_now(self._start_model(record))
        return record.model_id

    async def deploy_model_async(
        self, deployment: ModelDeployment, activate: Optional[bool] = None
    ) -> ModelId:
        """Like :meth:`deploy_model`, but awaits the bring-up of the version.

        This is the management plane's entry point: when it returns, the new
        version's replicas and dispatchers are running (on a started
        instance) and the version is serving or staged as requested.
        """
        async with self._admin_lock:
            record = self._register_model(deployment, activate)
            if self._started:
                await self._start_model(record)
            return record.model_id

    async def undeploy_model(self, model: str) -> ModelId:
        """Remove a model version from a (possibly running) instance.

        ``model`` is a ``"name:version"`` key, or a bare name resolving to
        its active version.  The version is first removed from the routing
        table (no new queries route to it — undeploying an in-flight canary
        arm aborts that rollout first), then its batching queue is closed
        and drained by its own dispatchers — in-flight queries complete —
        before replicas are stopped.  The last serving model of a started
        instance cannot be undeployed.
        """
        async with self._admin_lock:
            key = self.routing.resolve_key(model, self._models)
            record = self._models[key]
            name = record.model_id.name
            if self.routing.canary_key(name) == key:
                # Undeploying the canary arm is an implicit abort: traffic
                # snaps back to the stable arm before the teardown.
                self.routing.abort(name)
            if self.routing.active_key(name) == key:
                remaining = [n for n in self.routing.names() if n != name]
                if self._started and not remaining:
                    raise DeploymentError(
                        f"cannot undeploy '{key}': it is the last serving model"
                    )
                self.routing.forget(name)
            elif self.routing.previous_key(name) == key:
                self.routing.drop_previous(name)
            del self._models[key]
            self._breakers.pop(key, None)
            self._prune_selection_state()
            if self._started:
                record.queue.close()
                await self._drain_queue(record)
                for dispatcher in record.dispatchers:
                    await dispatcher.stop()
                await record.replica_set.stop()
            return record.model_id

    async def set_num_replicas(self, model: str, num_replicas: int) -> int:
        """Grow or shrink a model version's live replica set; returns the new size.

        Scaling up builds fresh containers from the deployment's factory and
        attaches a new dispatcher per replica to the version's existing
        batching queue.  Scaling down detaches dispatchers one at a time —
        each finishes its in-flight batch, and queries still waiting in the
        shared queue are picked up by the surviving replicas — before the
        spare replicas are stopped.
        """
        if num_replicas < 1:
            raise DeploymentError("num_replicas must be >= 1")
        async with self._admin_lock:
            key = self.routing.resolve_key(model, self._models)
            record = self._models[key]
            while len(record.replica_set) < num_replicas:
                replica = record.replica_set.add_replica()
                dispatcher = self._make_dispatcher(record, replica)
                record.dispatchers.append(dispatcher)
                if self._started:
                    await replica.start()
                    dispatcher.start()
            while len(record.replica_set) > num_replicas:
                replica = record.replica_set.replicas[-1]
                dispatcher = record.dispatcher_for(replica)
                if dispatcher is not None:
                    await dispatcher.stop()
                    record.dispatchers.remove(dispatcher)
                record.replica_set.remove_replica(replica)
                await replica.stop()
            return len(record.replica_set)

    # -- traffic shifting (canary rollouts) -----------------------------------

    def start_canary(
        self, model_name: str, version: int, weight: float
    ) -> TrafficSplit:
        """Begin a weighted canary rollout of ``version`` for ``model_name``.

        ``weight`` of the name's traffic (by deterministic, seeded routing-key
        hash — the same key always lands on the same arm) shifts to the
        canary version, which must already be deployed (normally staged via
        :meth:`deploy_model`).  Per-arm latency/error metrics accumulate
        under ``routing.arm.<key>.*`` for both arms while the canary is in
        flight, feeding :meth:`promote` / :meth:`abort_canary` decisions —
        manual or via :class:`~repro.routing.controller.CanaryController`.
        """
        key = str(ModelId(model_name, version))
        if key not in self._models:
            raise DeploymentError(
                f"cannot canary '{key}': that version is not deployed"
            )
        return self.routing.start_canary(model_name, key, weight)

    def adjust_canary(self, model_name: str, weight: float) -> TrafficSplit:
        """Change the traffic weight of an in-flight canary (atomic swap)."""
        return self.routing.adjust_canary(model_name, weight)

    def promote(self, model_name: str) -> ModelId:
        """Make the in-flight canary the sole serving version.

        The displaced stable version is retained, staged, as the rollback
        target; selection state learned by the canary's serving-set
        combination carries straight over (same namespace).  Selection
        namespaces no routing configuration can reach any more are pruned.
        """
        promoted = self.routing.promote(model_name)
        self._prune_selection_state()
        return self._models[promoted].model_id

    def abort_canary(self, model_name: str) -> ModelId:
        """Discard the in-flight canary; all traffic returns to the stable arm.

        Returns the restored stable version's id.  The canary version stays
        deployed (staged) but its mixed-serving-set selection state is
        pruned — a future canary of the same version starts fresh.
        """
        self.routing.abort(model_name)
        self._prune_selection_state()
        return self._models[self.routing.active_key(model_name)].model_id

    def rollout(self, model_name: str, version: int) -> ModelId:
        """Atomically make ``version`` of ``model_name`` the serving version.

        A thin wrapper over the canary verbs: an instant rollout is a
        full-weight canary promoted immediately (one atomic table swap per
        step — queries that already selected the old version keep their
        in-flight futures; every query routed afterwards lands on the new
        version).  The old version is retained, staged, with its selection
        state intact for :meth:`rollback`.  Any other in-flight canary for
        the name is aborted first.
        """
        key = str(ModelId(model_name, version))
        record = self._models.get(key)
        if record is None:
            raise DeploymentError(
                f"cannot roll out '{key}': that version is not deployed"
            )
        current = self.routing.active_key(model_name)
        if current == key:
            return record.model_id
        if current is None:
            self.routing.activate(model_name, key)
            return record.model_id
        canary = self.routing.canary_key(model_name)
        if canary == key:
            return self.promote(model_name)
        if canary is not None:
            self.routing.abort(model_name)
        self.routing.start_canary(model_name, key, weight=1.0)
        return self.promote(model_name)

    def rollback(self, model_name: str) -> ModelId:
        """Atomically swap ``model_name`` back to its previously serving version.

        A thin wrapper over the routing layer: any in-flight canary is
        aborted, then the stable arm swaps back to the rollback target
        (whose selection state was retained).
        """
        previous = self.routing.previous_key(model_name)
        if previous is None:
            raise DeploymentError(
                f"no previous version of '{model_name}' to roll back to"
            )
        if previous not in self._models:
            raise DeploymentError(
                f"previous version '{previous}' has been undeployed"
            )
        if self.routing.canary_key(model_name) is not None:
            self.routing.abort(model_name)
        restored = self.routing.rollback(model_name)
        # The aborted canary arm (if any) is unreachable now; drop its state.
        self._prune_selection_state()
        return self._models[restored].model_id

    def restore_routing(
        self,
        model_name: str,
        split: TrafficSplit,
        previous_key: Optional[str] = None,
    ) -> None:
        """Reinstall a durably-recorded routing configuration for one name.

        The cold-start recovery seam: after a crash, the management plane
        redeploys every version staged (``activate=False``) and then swaps
        the recorded :class:`TrafficSplit` — stable arm, in-flight canary
        weight, rollback pointer — straight back into the routing table, so
        the restarted instance routes exactly as the dead one did.  Every
        key referenced by the split (and the rollback target) must already
        be deployed.
        """
        for key in split.keys():
            if key not in self._models:
                raise DeploymentError(
                    f"cannot restore routing for '{model_name}': "
                    f"arm '{key}' is not deployed"
                )
        if previous_key is not None and previous_key not in self._models:
            raise DeploymentError(
                f"cannot restore routing for '{model_name}': "
                f"rollback target '{previous_key}' is not deployed"
            )
        self.routing.restore(model_name, split, previous_key)
        self._prune_selection_state()

    @staticmethod
    async def _drain_queue(record: _DeployedModel, timeout_s: float = 10.0) -> None:
        """Wait for the record's dispatchers to drain its (closed) queue.

        Event-driven: the queue wakes us when the last item is handed to a
        dispatcher.  The timeout bounds teardown when nothing can drain the
        queue any more (e.g. every dispatcher already quarantined).
        """
        await record.queue.wait_empty(timeout_s=timeout_s)

    def deployed_models(self) -> List[ModelId]:
        """Ids of every deployed model version (serving and staged)."""
        return [record.model_id for record in self._models.values()]

    def serving_models(self) -> List[ModelId]:
        """Ids of the versions currently receiving traffic (all split arms)."""
        return [self._models[key].model_id for key in self.routing.serving_keys()]

    def active_version(self, model_name: str) -> Optional[ModelId]:
        """The stable serving version of ``model_name`` (None when not serving)."""
        key = self.routing.active_key(model_name)
        return self._models[key].model_id if key is not None else None

    def model_versions(self, model_name: str) -> List[ModelId]:
        """Every deployed version of one model name."""
        return [
            record.model_id
            for record in self._models.values()
            if record.model_id.name == model_name
        ]

    def model_records(self) -> List[_DeployedModel]:
        """Internal serving records (used by the management plane)."""
        return list(self._models.values())

    def model_record(self, model: str) -> _DeployedModel:
        """The serving record for one model key or bare name."""
        return self._models[self.routing.resolve_key(model, self._models)]

    @property
    def is_started(self) -> bool:
        return self._started

    # -- selection state ------------------------------------------------------

    def _selection_manager_for(self, plan: RoutePlan) -> SelectionStateManager:
        """The (lazily built) selection-state manager for one routing plan.

        The store namespace comes from the plan's serving-set combination, so
        each combination keeps its own policy state: a rollout starts the new
        version's state fresh while the retired version's state survives in
        its old namespace, a rollback picks that state right back up, and a
        canary's mixed combination learns independently of the stable one.
        """
        manager = self._selection_managers.get(plan.namespace)
        if manager is None:
            if not plan.serving_keys:
                raise ClipperError("no models are deployed")
            policy = make_policy(
                self.config.selection_policy, **self.config.selection_policy_kwargs
            )
            manager = SelectionStateManager(
                policy=policy,
                model_ids=[self._models[key].model_id for key in plan.serving_keys],
                store=self.state_store,
                namespace=plan.namespace,
            )
            self._selection_managers[plan.namespace] = manager
        return manager

    @property
    def selection_manager(self) -> SelectionStateManager:
        """The selection-state manager of the all-stable-arms serving set."""
        return self._selection_manager_for(self.routing.default_plan())

    def _prune_selection_state(self) -> None:
        """Drop selection state no routing configuration can reach any more.

        Called whenever routing retires a configuration (promote, abort,
        rollback, undeploy, forced activation).  A namespace survives when every
        model key it references is still deployed *and* still reachable — a
        current split arm or a rollback target — which preserves exactly the
        state :meth:`rollback` may need while retiring everything older.
        Selection namespaces are scoped by application name, so instances
        sharing one state store never prune each other's state.
        """
        reachable = self.routing.reachable_keys()
        for namespace in self.state_store.namespaces():
            keys = parse_namespace_keys(namespace, self.routing.scope)
            if not keys:
                continue
            if all(key in reachable and key in self._models for key in keys):
                continue
            manager = self._selection_managers.pop(namespace, None)
            if manager is not None:
                manager.prune(())
            else:
                self.state_store.clear(namespace)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Start every deployed model's replicas and dispatchers."""
        if self._started:
            return
        if not self._models and not self.config.allow_empty_start:
            raise ClipperError("cannot start Clipper with no deployed models")
        for record in self._models.values():
            await self._start_model(record)
        self._started = True

    async def _start_model(self, record: _DeployedModel) -> None:
        await record.replica_set.start()
        for dispatcher in record.dispatchers:
            dispatcher.start()

    async def stop(self) -> None:
        """Stop dispatchers and container replicas."""
        if not self._started:
            return
        for record in self._models.values():
            record.queue.close()
            for dispatcher in record.dispatchers:
                await dispatcher.stop()
            await record.replica_set.stop()
        self._started = False

    # -- prediction path ------------------------------------------------------

    async def predict(self, query: Query) -> Prediction:
        """Render a prediction for one query.

        The request flows routing → selection → cache → batching queues →
        containers → combine, with the straggler-mitigation deadline derived
        from the query's (or application's) latency SLO.  The routing plan
        pins the query's arm per split (keyed by user id, falling back to
        the input hash) and carries the per-arm metric handles used to
        attribute the outcome while a canary is in flight.
        """
        if not self._started:
            raise ClipperError("Clipper is not started")
        start = time.monotonic()
        slo_ms = query.latency_slo_ms or self.config.latency_slo_ms
        deadline = start + slo_ms / 1000.0

        # Tracing: ``begin`` returns a context only for head-sampled (or
        # caller-forced) queries, so the cache-hit fast path pays exactly one
        # call returning None plus per-site ``is not None`` branches.  A
        # shadow context attaches lazily at the first cache miss below — the
        # only place tail-capture flags (SLO miss, straggler, retry, error)
        # can originate.  Engine-side per-stage spans are recorded for
        # *sampled* traces only; the flag sites and the dispatcher's
        # queue/RPC spans cover shadow traces too, which is what tail
        # capture needs.
        trace = sampled = self._trace_begin(query.trace_id, start)
        if sampled is not None:
            if query.metadata:
                # The frontend may have stamped edge-side spans (input
                # validation) before the engine clock started.
                pre = query.metadata.get("pre_spans")
                if pre:
                    sampled.spans.extend(pre)
                    sampled.start = pre[0][1]
            t_stage = start

        # The input is hashed exactly once per query; the digest is reused
        # for the routing key, every per-model cache fetch/insert, the
        # pending queue items, and the dispatcher's straggler late-fill.
        input_hash = query.input_hash()
        plan = self.routing.plan_for(query.user_id or input_hash)
        selection = self._selection_manager_for(plan)
        selected, selection_state = selection.select_with_state(
            query.input, context=query.user_id
        )
        if sampled is not None:
            now = time.monotonic()
            sampled.spans.append(("selection.select", t_stage, now, None))
            t_stage = now
        pending: Dict[str, asyncio.Future] = {}
        predictions: Dict[str, Any] = {}
        cache_hits = 0
        # Overload control touches only cache misses: a fully cached query
        # never consults the admission gate or any breaker, keeping the
        # fast path identical to an unconfigured instance.
        admission = self._admission
        breakers = self._breakers
        admitted = False
        try:
            for model_key in selected:
                cached = self.cache.fetch_by_hash(model_key, input_hash)
                if cached is not None:
                    predictions[model_key] = cached
                    cache_hits += 1
                    continue
                if admission is not None and not admitted:
                    # One admission slot per query, consumed at the first
                    # cache miss and returned in the ``finally`` below.
                    if admission.try_acquire():
                        admitted = True
                    elif (
                        admission.config.shed_policy == "drop-oldest"
                        and self._try_drop_oldest(model_key)
                    ):
                        admission.force_acquire()
                        admitted = True
                    else:
                        return self._shed(query, start, selected, trace, slo_ms)
                breaker = breakers.get(model_key) if breakers else None
                if breaker is not None and not breaker.allow():
                    # Breaker open: fast-fail this model without touching its
                    # queue; the query renders from the remaining models or
                    # the default output, exactly like a missing model.
                    self._breaker_fastfail_counter.increment()
                    continue
                if trace is None and self._trace_shadow is not None:
                    trace = self._trace_shadow(start)
                try:
                    future = await self._submit(
                        model_key, query, deadline, input_hash, trace,
                        shed_on_full=True,
                    )
                except DeploymentError:
                    # The model was undeployed between selection and
                    # submission (a live management op); treat it as missing
                    # rather than failing the query.
                    self._unavailable_counter.increment()
                    if breaker is not None:
                        breaker.abandon()
                    continue
                except OverloadError:
                    # Bounded queue full and drop-oldest could not make room.
                    if breaker is not None:
                        breaker.abandon()
                    return self._shed(query, start, selected, trace, slo_ms)
                pending[model_key] = future
            if sampled is not None:
                now = time.monotonic()
                sampled.spans.append(("cache.lookup", t_stage, now, None))
                t_stage = now

            if pending:
                if trace is not None:
                    t_wait = time.monotonic()
                # Await each pending model future directly.  With straggler
                # mitigation on, every future self-resolves by the deadline
                # (the sweep timer delivers DEADLINE_MISS), so the sequential
                # loop still returns at the deadline while each completion
                # wakes this task without intermediate waiter futures or
                # per-query timers.
                for model_key, future in pending.items():
                    breaker = breakers.get(model_key) if breakers else None
                    try:
                        output = await future
                    except asyncio.CancelledError:
                        if future.cancelled():
                            if breaker is not None:
                                breaker.abandon()
                            continue  # the query was abandoned, not this task
                        raise
                    except Exception:
                        # Container/RPC failure, or the batch layer dropped
                        # the query as already expired.
                        self._container_error_counter.increment()
                        if breaker is not None:
                            breaker.record_failure()
                        if trace is not None:
                            trace.flags |= TRACE_ERROR
                        continue
                    if output is DEADLINE_MISS:
                        # Straggler: rendered without this model (§5.2.2).
                        # Its late result still lands in the cache — the
                        # dispatcher late-fills through the sink installed at
                        # deployment.
                        self._straggler_counter.increment()
                        if breaker is not None:
                            breaker.record_failure(timeout=True)
                        if trace is not None:
                            trace.flags |= TRACE_STRAGGLER
                            now = time.monotonic()
                            trace.spans.append(
                                ("deadline.miss", now, now, {"model": model_key})
                            )
                        continue
                    if breaker is not None:
                        breaker.record_success()
                    output = _detach_output(output)
                    self.cache.put_by_hash(model_key, input_hash, output)
                    predictions[model_key] = output
                if trace is not None:
                    t_stage = time.monotonic()
                    trace.spans.append(("model.wait", t_wait, t_stage, None))

            latency_ms = (time.monotonic() - start) * 1000.0
            if len(predictions) == len(selected):
                missing = ()
            else:
                missing = tuple(key for key in selected if key not in predictions)
            if plan.tracked_arms:
                # Canary in flight: attribute this query's outcome to the
                # split arm(s) that served it, through handles resolved at
                # table-swap time (zero registry lookups here).
                for arm_key, arm in plan.tracked_arms:
                    if arm_key in selected:
                        arm.observe(latency_ms, ok=arm_key in predictions)

            if not predictions:
                if self.config.default_output is not None:
                    return self._finish(
                        query, self.config.default_output, 0.0, latency_ms,
                        selected, missing, default_used=True, from_cache=False,
                        trace=trace, slo_ms=slo_ms,
                    )
                if trace is not None:
                    self.tracer.finish(
                        trace, latency_ms > slo_ms, False, True, query.query_id
                    )
                raise PredictionTimeoutError(query.query_id, slo_ms)

            output, confidence = selection.combine(
                query.input, predictions, context=query.user_id,
                state=selection_state,
            )
            if sampled is not None:
                sampled.spans.append(
                    ("selection.combine", t_stage, time.monotonic(), None)
                )
            default_used = False
            if (
                self.config.confidence_threshold > 0.0
                and confidence < self.config.confidence_threshold
                and self.config.default_output is not None
            ):
                output = self.config.default_output
                default_used = True
            return self._finish(
                query,
                output,
                confidence,
                latency_ms,
                selected,
                missing,
                default_used=default_used,
                from_cache=cache_hits == len(selected),
                trace=trace,
                slo_ms=slo_ms,
            )
        finally:
            if admitted:
                admission.release()

    async def _submit(
        self,
        model_key: str,
        query: Query,
        deadline: Optional[float],
        input_hash: Optional[str] = None,
        trace: Optional[Any] = None,
        shed_on_full: bool = False,
    ) -> asyncio.Future:
        record = self._models.get(model_key)
        if record is None:
            raise DeploymentError(f"selection policy chose unknown model '{model_key}'")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        item = PendingQuery(
            input=query.input,
            future=future,
            deadline=deadline if self.config.straggler_mitigation else None,
            query_id=query.query_id,
            input_hash=input_hash,
            trace=trace,
        )
        if record.queue.maxsize == 0:
            # Unbounded queue (the default): enqueue without suspending.
            record.queue.put_nowait(item)
        elif shed_on_full:
            # The prediction path never blocks on a full bounded queue: it
            # sheds instead (drop-oldest makes room by evicting the entry
            # closest to deadline expiry; otherwise OverloadError bubbles
            # to the caller's shed policy).
            try:
                record.queue.put_nowait(item)
            except asyncio.QueueFull:
                admission = self._admission
                policy = admission.config.shed_policy if admission else None
                if policy == "drop-oldest" and self._try_drop_oldest(model_key):
                    record.queue.put_nowait(item)
                else:
                    raise OverloadError(
                        f"queue for model '{model_key}' is full",
                        retry_after_s=(
                            admission.retry_after_s()
                            if admission is not None
                            else self.config.latency_slo_ms / 1000.0
                        ),
                    ) from None
        else:
            await record.queue.put(item)
        if item.deadline is not None:
            self._sweeper.register(future, item.deadline)
        return future

    def _try_drop_oldest(self, model_key: str) -> bool:
        """Evict the queued entry closest to deadline expiry to make room.

        The victim's future resolves with :data:`DEADLINE_MISS`, so from its
        caller's perspective the dropped query looks exactly like a straggler
        (rendered from the remaining models or the default output).
        """
        record = self._models.get(model_key)
        if record is None:
            return False
        victim = record.queue.evict_expiring()
        if victim is None:
            return False
        if not victim.future.done():
            victim.future.set_result(DEADLINE_MISS)
        if self._shed_counters is not None:
            self._shed_counters["drop-oldest"].increment()
        self.tracer.capture_event(
            "overload.shed",
            meta={"policy": "drop-oldest", "victim_query_id": victim.query_id,
                  "model": model_key},
            component="overload",
        )
        return True

    def _shed(
        self,
        query: Query,
        start: float,
        selected: List[str],
        trace: Optional[Any],
        slo_ms: float,
    ) -> Prediction:
        """Resolve a query the admission gate refused.

        Under the ``degrade`` policy (with a default output configured) the
        query is answered immediately with the default prediction flagged
        ``default_used``; every other case raises :class:`OverloadError`,
        which the HTTP frontend renders as a structured 429 with a
        ``Retry-After`` hint.
        """
        admission = self._admission
        policy = admission.config.shed_policy if admission is not None else "reject"
        if policy == "degrade" and self.config.default_output is not None:
            if self._shed_counters is not None:
                self._shed_counters["degrade"].increment()
            self.tracer.capture_event(
                "overload.shed",
                meta={"policy": "degrade", "query_id": query.query_id},
                component="overload",
            )
            latency_ms = (time.monotonic() - start) * 1000.0
            return self._finish(
                query, self.config.default_output, 0.0, latency_ms,
                selected, tuple(selected), default_used=True, from_cache=False,
                trace=trace, slo_ms=slo_ms,
            )
        if self._shed_counters is not None:
            self._shed_counters["reject"].increment()
        self.tracer.capture_event(
            "overload.shed",
            meta={"policy": "reject", "query_id": query.query_id},
            component="overload",
        )
        if trace is not None:
            latency_ms = (time.monotonic() - start) * 1000.0
            self.tracer.finish(
                trace, latency_ms > slo_ms, False, True, query.query_id
            )
        raise OverloadError(
            f"application '{query.app_name}' is overloaded",
            retry_after_s=(
                admission.retry_after_s() if admission is not None else 1.0
            ),
        )

    def check_admission(self) -> None:
        """Edge precheck: refuse obviously-doomed requests before any work.

        Called by the HTTP frontend ahead of input validation.  Only the
        ``reject`` policy short-circuits here (non-consuming ``saturated()``
        peek — the engine's ``try_acquire`` still makes the real decision);
        ``degrade`` and ``drop-oldest`` must reach the engine to produce
        their answer.
        """
        admission = self._admission
        if admission is None or admission.config.shed_policy != "reject":
            return
        if admission.saturated():
            if self._shed_counters is not None:
                self._shed_counters["reject"].increment()
            self.tracer.capture_event(
                "overload.shed",
                meta={"policy": "reject", "stage": "edge"},
                component="overload",
            )
            raise OverloadError(
                "application is overloaded",
                retry_after_s=admission.retry_after_s(),
            )

    def overload_state(self) -> dict:
        """Pressure snapshot for the management plane's ``describe``."""
        queues = {}
        for key, record in self._models.items():
            queue = record.queue
            queues[key] = {
                "depth": queue.qsize(),
                "max_depth": queue.maxsize,
                "saturation": round(queue.saturation(), 4),
            }
        return {
            "admission": (
                self._admission.state() if self._admission is not None else None
            ),
            "breakers": {
                key: breaker.describe() for key, breaker in self._breakers.items()
            },
            "queues": queues,
        }

    def _finish(
        self,
        query: Query,
        output: Any,
        confidence: float,
        latency_ms: float,
        selected: List[str],
        missing: tuple,
        default_used: bool,
        from_cache: bool,
        trace: Optional[Any] = None,
        slo_ms: Optional[float] = None,
    ) -> Prediction:
        self._latency_hist.observe(latency_ms)
        self._throughput_meter.mark()
        self._predict_counter.increment()
        if default_used:
            self._default_counter.increment()
        if missing:
            models_used = tuple(key for key in selected if key not in missing)
        else:
            models_used = tuple(selected)
        trace_id = None
        if trace is not None:
            trace_id = self.tracer.finish(
                trace,
                slo_ms is not None and latency_ms > slo_ms,
                default_used,
                False,
                query.query_id,
            )
        return Prediction(
            query_id=query.query_id,
            app_name=query.app_name,
            output=output,
            confidence=confidence,
            latency_ms=latency_ms,
            default_used=default_used,
            models_used=models_used,
            models_missing=missing,
            from_cache=from_cache,
            trace_id=trace_id,
        )

    # -- feedback path --------------------------------------------------------

    async def feedback(self, feedback: Feedback) -> None:
        """Incorporate application feedback into the selection policy.

        The selection layer needs each model's prediction for the feedback
        input.  Cached predictions are joined directly; for cache misses the
        models are (re-)evaluated through the normal batching path, which is
        exactly the work the prediction cache saves (§4.2).  The feedback
        routes through the same plan as the queries it describes (same
        routing key → same split arm), so canary arms learn only from their
        own traffic.
        """
        if not self._started:
            raise ClipperError("Clipper is not started")
        input_hash = feedback.input_hash()
        # Snapshot the routing plan: live management ops may swap the table
        # while this coroutine awaits, and staged/retired versions should
        # not be evaluated for feedback.
        plan = self.routing.plan_for(feedback.user_id or input_hash)
        selection = self._selection_manager_for(plan)
        predictions: Dict[str, Any] = {}
        pending: Dict[str, asyncio.Future] = {}
        for model_key in plan.serving_keys:
            cached = self.cache.fetch_by_hash(model_key, input_hash)
            if cached is not None:
                predictions[model_key] = cached
                continue
            query = Query(app_name=feedback.app_name, input=feedback.input)
            try:
                pending[model_key] = await self._submit(
                    model_key, query, deadline=None, input_hash=input_hash
                )
            except DeploymentError:
                self._unavailable_counter.increment()
        if pending:
            await asyncio.wait(list(pending.values()))
            for model_key, future in pending.items():
                if future.exception() is None:
                    output = _detach_output(future.result())
                    predictions[model_key] = output
                    self.cache.put_by_hash(model_key, input_hash, output)
        selection.observe(
            feedback.input, feedback.label, predictions, context=feedback.user_id
        )
        self._feedback_counter.increment()
        self._feedback_meter.mark()

    # -- synchronous conveniences ----------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    def _run_coroutine_now(self, coroutine) -> Any:
        loop = self._ensure_loop()
        return loop.run_until_complete(coroutine)

    def start_sync(self) -> None:
        """Blocking wrapper around :meth:`start` for non-async callers."""
        self._run_coroutine_now(self.start())

    def stop_sync(self) -> None:
        """Blocking wrapper around :meth:`stop`."""
        self._run_coroutine_now(self.stop())
        if self._loop is not None and not self._loop.is_closed():
            self._loop.close()
            self._loop = None

    def predict_sync(self, query: Query) -> Prediction:
        """Blocking wrapper around :meth:`predict`."""
        return self._run_coroutine_now(self.predict(query))

    def feedback_sync(self, feedback: Feedback) -> None:
        """Blocking wrapper around :meth:`feedback`."""
        self._run_coroutine_now(self.feedback(feedback))
