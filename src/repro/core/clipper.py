"""The Clipper serving engine.

This module wires the two layers of the paper's architecture together for a
single application:

* the **model abstraction layer** — a prediction cache (§4.2), one adaptive
  batching queue per deployed model with one dispatcher per container
  replica (§4.3–4.4), and the RPC plumbing to the containers — and
* the **model selection layer** — a pluggable selection policy with
  per-context state (§5), straggler mitigation driven by the latency SLO
  (§5.2.2), and the feedback path that joins application feedback with
  cached predictions to update the policy.

The public surface is intentionally small::

    clipper = Clipper(ClipperConfig(app_name="demo", latency_slo_ms=20))
    clipper.deploy_model(ModelDeployment("svm", make_svm_container))
    await clipper.start()
    prediction = await clipper.predict(Query(app_name="demo", input=x))
    await clipper.feedback(Feedback(app_name="demo", input=x, label=y))
    await clipper.stop()

Synchronous convenience wrappers (``predict_sync`` etc.) run the coroutine
on a private event loop for scripts and tests that are not async.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

from repro.batching.controllers import make_controller
from repro.batching.dispatcher import ReplicaDispatcher
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.cache.prediction_cache import PredictionCache
from repro.containers.replica import ReplicaSet
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import (
    ClipperError,
    DeploymentError,
    PredictionTimeoutError,
)
from repro.core.metrics import MetricsRegistry
from repro.core.types import Feedback, ModelId, Prediction, Query
from repro.selection.manager import SelectionStateManager
from repro.selection.policy import make_policy
from repro.state.kvstore import KeyValueStore


class _DeployedModel:
    """Internal record of one deployed model and its serving machinery."""

    def __init__(
        self,
        deployment: ModelDeployment,
        replica_set: ReplicaSet,
        queue: BatchingQueue,
        dispatchers: List[ReplicaDispatcher],
    ) -> None:
        self.deployment = deployment
        self.replica_set = replica_set
        self.queue = queue
        self.dispatchers = dispatchers

    @property
    def model_id(self) -> ModelId:
        return self.replica_set.model_id


class Clipper:
    """A Clipper serving instance for one application."""

    def __init__(
        self,
        config: Optional[ClipperConfig] = None,
        state_store: Optional[KeyValueStore] = None,
    ) -> None:
        self.config = config or ClipperConfig()
        self.metrics = MetricsRegistry()
        self.cache = PredictionCache(
            capacity=self.config.cache_size, eviction=self.config.cache_eviction
        )
        self.state_store = state_store or KeyValueStore()
        self._models: Dict[str, _DeployedModel] = {}
        self._selection: Optional[SelectionStateManager] = None
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Metric handles are resolved once here instead of per call: registry
        # lookups take a lock and a dict probe, which is measurable on the
        # cache-hit path that does no other work.
        self._latency_hist = self.metrics.histogram("predict.latency_ms")
        self._throughput_meter = self.metrics.meter("predict.throughput")
        self._predict_counter = self.metrics.counter("predict.count")
        self._default_counter = self.metrics.counter("predict.defaults")
        self._straggler_counter = self.metrics.counter("predict.stragglers")
        self._container_error_counter = self.metrics.counter("predict.container_errors")
        self._feedback_counter = self.metrics.counter("feedback.count")
        self._feedback_meter = self.metrics.meter("feedback.throughput")

    # -- deployment -----------------------------------------------------------

    def deploy_model(self, deployment: ModelDeployment) -> ModelId:
        """Register a model behind the model abstraction layer.

        May be called before or after :meth:`start`; models deployed after
        start are brought up immediately.  Returns the assigned
        :class:`ModelId`.
        """
        model_id = ModelId(deployment.name, deployment.version)
        key = str(model_id)
        if key in self._models:
            raise DeploymentError(f"model '{key}' is already deployed")

        replica_set = ReplicaSet(
            model_id=model_id,
            container_factory=deployment.container_factory,
            num_replicas=deployment.num_replicas,
            serialize_messages=deployment.serialize_rpc,
        )
        queue = BatchingQueue(name=key)
        dispatchers = []
        for replica in replica_set:
            controller = make_controller(
                deployment.batching, slo_ms=self.config.batch_latency_budget_ms
            )
            dispatchers.append(
                ReplicaDispatcher(
                    replica=replica,
                    queue=queue,
                    controller=controller,
                    batch_wait_timeout_ms=deployment.batching.batch_wait_timeout_ms,
                    metrics=self.metrics,
                )
            )
        record = _DeployedModel(deployment, replica_set, queue, dispatchers)
        self._models[key] = record
        # Selection state must be rebuilt to include the new model.
        self._selection = None
        if self._started:
            try:
                running_loop = asyncio.get_running_loop()
            except RuntimeError:
                running_loop = None
            if running_loop is not None:
                # Deployment from async code while serving: bring the model up
                # as a background task; queries queued before it finishes wait
                # in the model's batching queue.
                running_loop.create_task(self._start_model(record))
            else:
                self._run_coroutine_now(self._start_model(record))
        return model_id

    def deployed_models(self) -> List[ModelId]:
        """Ids of every deployed model."""
        return [record.model_id for record in self._models.values()]

    @property
    def selection_manager(self) -> SelectionStateManager:
        """The selection-state manager (built lazily over the deployed models)."""
        if self._selection is None:
            if not self._models:
                raise ClipperError("no models are deployed")
            policy = make_policy(
                self.config.selection_policy, **self.config.selection_policy_kwargs
            )
            self._selection = SelectionStateManager(
                policy=policy,
                model_ids=self.deployed_models(),
                store=self.state_store,
            )
        return self._selection

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Start every deployed model's replicas and dispatchers."""
        if self._started:
            return
        if not self._models:
            raise ClipperError("cannot start Clipper with no deployed models")
        for record in self._models.values():
            await self._start_model(record)
        self._started = True

    async def _start_model(self, record: _DeployedModel) -> None:
        await record.replica_set.start()
        for dispatcher in record.dispatchers:
            dispatcher.start()

    async def stop(self) -> None:
        """Stop dispatchers and container replicas."""
        if not self._started:
            return
        for record in self._models.values():
            record.queue.close()
            for dispatcher in record.dispatchers:
                await dispatcher.stop()
            await record.replica_set.stop()
        self._started = False

    # -- prediction path ------------------------------------------------------

    async def predict(self, query: Query) -> Prediction:
        """Render a prediction for one query.

        The request flows selection → cache → batching queues → containers →
        combine, with the straggler-mitigation deadline derived from the
        query's (or application's) latency SLO.
        """
        if not self._started:
            raise ClipperError("Clipper is not started")
        start = time.monotonic()
        slo_ms = query.latency_slo_ms or self.config.latency_slo_ms
        deadline = start + slo_ms / 1000.0

        # The input is hashed exactly once per query; the digest is reused
        # for every per-model cache fetch/insert, carried by the pending
        # queue items, and used by the straggler late-completion callback.
        input_hash = query.input_hash()
        selected = self.selection_manager.select(query.input, context=query.user_id)
        pending: Dict[str, asyncio.Future] = {}
        predictions: Dict[str, Any] = {}
        cache_hits = 0
        for model_key in selected:
            cached = self.cache.fetch_by_hash(model_key, input_hash)
            if cached is not None:
                predictions[model_key] = cached
                cache_hits += 1
                continue
            future = await self._submit(model_key, query, deadline, input_hash)
            pending[model_key] = future

        if pending:
            arrived = await self._await_predictions(pending, input_hash, deadline)
            for model_key, output in arrived.items():
                self.cache.put_by_hash(model_key, input_hash, output)
                predictions[model_key] = output

        latency_ms = (time.monotonic() - start) * 1000.0
        missing = tuple(key for key in selected if key not in predictions)

        if not predictions:
            if self.config.default_output is not None:
                return self._finish(
                    query, self.config.default_output, 0.0, latency_ms,
                    selected, missing, default_used=True, from_cache=False,
                )
            raise PredictionTimeoutError(query.query_id, slo_ms)

        output, confidence = self.selection_manager.combine(
            query.input, predictions, context=query.user_id
        )
        default_used = False
        if (
            self.config.confidence_threshold > 0.0
            and confidence < self.config.confidence_threshold
            and self.config.default_output is not None
        ):
            output = self.config.default_output
            default_used = True
        return self._finish(
            query,
            output,
            confidence,
            latency_ms,
            selected,
            missing,
            default_used=default_used,
            from_cache=cache_hits == len(selected),
        )

    async def _submit(
        self,
        model_key: str,
        query: Query,
        deadline: Optional[float],
        input_hash: Optional[str] = None,
    ) -> asyncio.Future:
        record = self._models.get(model_key)
        if record is None:
            raise DeploymentError(f"selection policy chose unknown model '{model_key}'")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        item = PendingQuery(
            input=query.input,
            future=future,
            deadline=deadline if self.config.straggler_mitigation else None,
            query_id=query.query_id,
            input_hash=input_hash,
        )
        await record.queue.put(item)
        return future

    async def _await_predictions(
        self,
        pending: Dict[str, asyncio.Future],
        input_hash: str,
        deadline: float,
    ) -> Dict[str, Any]:
        """Wait for model responses, respecting the straggler deadline."""
        results: Dict[str, Any] = {}
        if not pending:
            return results
        futures = list(pending.values())
        if self.config.straggler_mitigation:
            timeout = max(deadline - time.monotonic(), 0.0)
            done, not_done = await asyncio.wait(futures, timeout=timeout)
        else:
            done, not_done = await asyncio.wait(futures)
        for model_key, future in pending.items():
            if future in done and not future.cancelled() and future.exception() is None:
                results[model_key] = future.result()
            elif future in done and future.exception() is not None:
                self._container_error_counter.increment()
        # Late (straggler) predictions are not returned to the application, but
        # when they do complete their results still populate the cache so the
        # feedback path can join against them.
        for model_key, future in pending.items():
            if future in not_done:
                self._straggler_counter.increment()
                future.add_done_callback(
                    self._make_late_completion_callback(model_key, input_hash)
                )
        return results

    def _make_late_completion_callback(self, model_key: str, input_hash: str):
        def _on_done(future: asyncio.Future) -> None:
            if not future.cancelled() and future.exception() is None:
                self.cache.put_by_hash(model_key, input_hash, future.result())

        return _on_done

    def _finish(
        self,
        query: Query,
        output: Any,
        confidence: float,
        latency_ms: float,
        selected: List[str],
        missing: tuple,
        default_used: bool,
        from_cache: bool,
    ) -> Prediction:
        self._latency_hist.observe(latency_ms)
        self._throughput_meter.mark()
        self._predict_counter.increment()
        if default_used:
            self._default_counter.increment()
        if missing:
            models_used = tuple(key for key in selected if key not in missing)
        else:
            models_used = tuple(selected)
        return Prediction(
            query_id=query.query_id,
            app_name=query.app_name,
            output=output,
            confidence=confidence,
            latency_ms=latency_ms,
            default_used=default_used,
            models_used=models_used,
            models_missing=missing,
            from_cache=from_cache,
        )

    # -- feedback path --------------------------------------------------------

    async def feedback(self, feedback: Feedback) -> None:
        """Incorporate application feedback into the selection policy.

        The selection layer needs each model's prediction for the feedback
        input.  Cached predictions are joined directly; for cache misses the
        models are (re-)evaluated through the normal batching path, which is
        exactly the work the prediction cache saves (§4.2).
        """
        if not self._started:
            raise ClipperError("Clipper is not started")
        input_hash = feedback.input_hash()
        predictions: Dict[str, Any] = {}
        pending: Dict[str, asyncio.Future] = {}
        for model_key in self._models:
            cached = self.cache.fetch_by_hash(model_key, input_hash)
            if cached is not None:
                predictions[model_key] = cached
            else:
                query = Query(app_name=feedback.app_name, input=feedback.input)
                pending[model_key] = await self._submit(
                    model_key, query, deadline=None, input_hash=input_hash
                )
        if pending:
            await asyncio.wait(list(pending.values()))
            for model_key, future in pending.items():
                if future.exception() is None:
                    output = future.result()
                    predictions[model_key] = output
                    self.cache.put_by_hash(model_key, input_hash, output)
        self.selection_manager.observe(
            feedback.input, feedback.label, predictions, context=feedback.user_id
        )
        self._feedback_counter.increment()
        self._feedback_meter.mark()

    # -- synchronous conveniences ----------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    def _run_coroutine_now(self, coroutine) -> Any:
        loop = self._ensure_loop()
        return loop.run_until_complete(coroutine)

    def start_sync(self) -> None:
        """Blocking wrapper around :meth:`start` for non-async callers."""
        self._run_coroutine_now(self.start())

    def stop_sync(self) -> None:
        """Blocking wrapper around :meth:`stop`."""
        self._run_coroutine_now(self.stop())
        if self._loop is not None and not self._loop.is_closed():
            self._loop.close()
            self._loop = None

    def predict_sync(self, query: Query) -> Prediction:
        """Blocking wrapper around :meth:`predict`."""
        return self._run_coroutine_now(self.predict(query))

    def feedback_sync(self, feedback: Feedback) -> None:
        """Blocking wrapper around :meth:`feedback`."""
        self._run_coroutine_now(self.feedback(feedback))
