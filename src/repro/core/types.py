"""Fundamental value types flowing through the serving path.

The paper's Figure 2 describes the prediction life-cycle: an application
issues a *query*, Clipper renders a *prediction* (with a confidence
estimate) and the application may later return *feedback* about the true
outcome.  These three records, plus the :class:`ModelId` naming scheme for
deployed models, are the vocabulary shared by every layer of the system.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

#: Monotonically increasing query id generator shared process-wide.
_QUERY_COUNTER = itertools.count()


def next_query_id() -> int:
    """Return the next unique query id."""
    return next(_QUERY_COUNTER)


@dataclass(frozen=True)
class ModelId:
    """Identifier of a deployed model: a name plus a version.

    Clipper treats the (name, version) pair as the key for prediction
    caching, batching queues and selection-policy arms, mirroring the
    ``Predict(m: ModelId, x: X) -> y: Y`` signature of §4.2.
    """

    name: str
    version: int = 1

    def __str__(self) -> str:
        return f"{self.name}:{self.version}"

    @staticmethod
    def parse(text: str) -> "ModelId":
        """Parse ``"name:version"`` (version optional) into a :class:`ModelId`."""
        if ":" in text:
            name, _, version = text.rpartition(":")
            return ModelId(name, int(version))
        return ModelId(text, 1)


#: Memoised ``str(dtype).encode()`` per dtype.  Rendering a numpy dtype as a
#: string walks numpy's type hierarchy and dominates the hashing cost for
#: small arrays; the set of dtypes seen by a serving process is tiny.
_DTYPE_TOKENS: Dict[Any, bytes] = {}


def _dtype_token(dtype: Any) -> bytes:
    token = _DTYPE_TOKENS.get(dtype)
    if token is None:
        token = str(dtype).encode()
        _DTYPE_TOKENS[dtype] = token
    return token


def hash_input(x: Any) -> str:
    """Return a stable content hash of a query input.

    Numpy arrays are hashed over their raw bytes together with shape and
    dtype; other values fall back to ``repr``.  The hash is used as the
    prediction-cache key so it must be deterministic across processes.

    This sits on the serving hot path — :meth:`Query.input_hash` is computed
    once per query and reused for every per-model cache lookup — so the
    array branch avoids the two hidden costs of the naive implementation:
    the dtype string is memoised and C-contiguous arrays are hashed through
    their buffer without a ``tobytes`` copy.
    """
    hasher = hashlib.sha1()
    if isinstance(x, np.ndarray):
        hasher.update(str(x.shape).encode())
        hasher.update(_dtype_token(x.dtype))
        if x.flags.c_contiguous:
            hasher.update(x.data)
        else:
            hasher.update(np.ascontiguousarray(x).tobytes())
    elif isinstance(x, (bytes, bytearray)):
        hasher.update(bytes(x))
    elif isinstance(x, str):
        hasher.update(x.encode())
    elif isinstance(x, (list, tuple)):
        for item in x:
            hasher.update(hash_input(item).encode())
    else:
        hasher.update(repr(x).encode())
    return hasher.hexdigest()


@dataclass
class Query:
    """A single prediction request issued by an application.

    Parameters
    ----------
    app_name:
        The application the query belongs to; each application has its own
        latency SLO, candidate models and selection-policy state.
    input:
        The query input (typically a 1-D numpy feature vector).
    user_id:
        Optional context key used by the contextualization support of the
        selection layer (§5.3).  ``None`` selects the application-wide state.
    latency_slo_ms:
        Optional per-query latency objective overriding the application SLO.
    """

    app_name: str
    input: Any
    user_id: Optional[str] = None
    latency_slo_ms: Optional[float] = None
    query_id: int = field(default_factory=next_query_id)
    arrival_time: float = field(default_factory=time.monotonic)
    metadata: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    _input_hash: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    def input_hash(self) -> str:
        """Content hash of the query input, used for prediction caching.

        Computed lazily on first call and memoised: the serving engine hashes
        each query exactly once and reuses the digest for every per-model
        cache fetch, insert and straggler late-completion.  The input must
        not be mutated after the first call.
        """
        digest = self._input_hash
        if digest is None:
            digest = self._input_hash = hash_input(self.input)
        return digest


@dataclass(slots=True)
class Prediction:
    """The response returned to the application for one query."""

    query_id: int
    app_name: str
    output: Any
    confidence: float = 1.0
    latency_ms: float = 0.0
    default_used: bool = False
    models_used: tuple = ()
    models_missing: tuple = ()
    from_cache: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None

    @property
    def is_confident(self) -> bool:
        """Whether every contributing model agreed with the final output."""
        return self.confidence >= 1.0 - 1e-12


@dataclass
class Feedback:
    """Ground-truth feedback returned by the application for a past query."""

    app_name: str
    input: Any
    label: Any
    user_id: Optional[str] = None
    query_id: Optional[int] = None
    timestamp: float = field(default_factory=time.monotonic)
    _input_hash: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    def input_hash(self) -> str:
        """Content hash of the feedback input, used to join with cached predictions.

        Memoised like :meth:`Query.input_hash`; computed at most once.
        """
        digest = self._input_hash
        if digest is None:
            digest = self._input_hash = hash_input(self.input)
        return digest


@dataclass(slots=True)
class BatchStats:
    """Summary of one dispatched batch, reported by the batching layer."""

    model_id: ModelId
    replica_id: int
    batch_size: int
    latency_ms: float
    queue_time_ms: float
    timestamp: float = field(default_factory=time.monotonic)
