"""Core Clipper serving engine: types, configuration, metrics and orchestration."""

from repro.core.clipper import Clipper
from repro.core.config import BatchingConfig, ClipperConfig, ModelDeployment
from repro.core.exceptions import (
    ClipperError,
    ContainerError,
    DeploymentError,
    PredictionTimeoutError,
    SelectionPolicyError,
)
from repro.core.types import Feedback, ModelId, Prediction, Query

__all__ = [
    "Clipper",
    "ClipperConfig",
    "BatchingConfig",
    "ModelDeployment",
    "Query",
    "Prediction",
    "Feedback",
    "ModelId",
    "ClipperError",
    "ContainerError",
    "DeploymentError",
    "PredictionTimeoutError",
    "SelectionPolicyError",
]
