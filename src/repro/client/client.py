"""Async and sync clients for the Clipper REST API.

The application side of the paper's Figure 2: an application never imports
the serving library — it talks to Clipper over REST.  This module is that
application's half of the contract, free of any import from the serving
*engine* (:mod:`repro.core` and friends); the one shared module is the wire
codec (:mod:`repro.rpc.serialization`, numpy-only), because a binary wire
format is precisely a contract both ends must share:

* :class:`AsyncClipperClient` / :class:`ClipperClient` — the two application
  verbs, ``predict`` and ``update``, plus schema/health introspection.
* :class:`AsyncAdminClient` / :class:`AdminClient` — the operator verbs of
  the management API (deploy, scale, rollout/rollback, the canary verbs,
  models/health/metrics/routing).

Both speak minimal HTTP/1.1 over a single **keep-alive** connection
(re-established transparently when the server closes it between requests),
encode numpy arrays as JSON arrays and ``bytes`` as base64 per the
application schema, and raise **typed exceptions mirroring the server's
structured error model**: the ``code`` field of the wire error selects the
exception class, so ``except UnknownApplication:`` works the same whether
the check failed client-side or three machines away.

A client constructed with ``binary=True`` negotiates the **columnar binary
encoding** for ``predict``/``update``: the request body is the RPC layer's
tagged binary frame (ndarray inputs travel as raw buffers, written
writev-style, never JSON-encoded), ``Accept`` offers
``application/x-clipper-columnar`` with a JSON fallback at ``q=0.5``, and
the response is decoded by its ``Content-Type``.  Against a server without
the columnar decoder the first such request answers 415, and the client
transparently drops to JSON for the rest of its life — safe to re-issue,
because a 415 is raised before the handler runs.
"""

from __future__ import annotations

import asyncio
import base64
import json
import random
import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import SerializationError
from repro.rpc.serialization import (
    COLUMNAR_CONTENT_TYPE,
    deserialize,
    serialize_buffers,
    serialized_nbytes,
)

API_PREFIX = "/api/v1"


# -- typed exceptions mirroring the wire error model ---------------------------


class ClipperClientError(Exception):
    """Base class for every error raised by the client SDK."""


class TransportError(ClipperClientError):
    """The connection failed before a complete HTTP response arrived."""


class RetryBudgetExceeded(TransportError):
    """Every attempt a call's retry budget allowed failed.

    ``attempts`` is how many times the request hit the wire; ``last_error``
    is the :class:`TransportError` of the final attempt.  Subclasses
    :class:`TransportError`, so callers handling transport failures keep
    working unchanged.
    """

    def __init__(self, message: str, attempts: int, last_error: Exception) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class ApiStatusError(ClipperClientError):
    """The server answered with a structured error payload."""

    def __init__(
        self, status: int, code: str, message: str, detail: Optional[Dict] = None
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.detail = dict(detail or {})


class UnknownApplication(ApiStatusError):
    """The request named an application the server does not host (404)."""


class RouteNotFound(ApiStatusError):
    """The request path matched no route (404)."""


class MalformedRequest(ApiStatusError):
    """The request body was structurally invalid (400)."""


class InvalidInput(ApiStatusError):
    """The input violated the application's declared schema (422)."""


class DeadlineMissed(ApiStatusError):
    """The prediction missed its SLO and the application has no default (504)."""


class ServiceOverloaded(ApiStatusError):
    """The server shed the request under overload (429 + ``Retry-After``)."""


class ManagementConflict(ApiStatusError):
    """An operator verb conflicted with the durable serving record (409)."""


class ServerError(ApiStatusError):
    """The server failed internally (5xx without a more specific code)."""


#: Wire error ``code`` → exception class.  Unknown codes fall back by status.
_ERRORS_BY_CODE = {
    "unknown_application": UnknownApplication,
    "route_not_found": RouteNotFound,
    "method_not_allowed": MalformedRequest,
    "malformed_request": MalformedRequest,
    "unsupported_media_type": MalformedRequest,
    "not_acceptable": MalformedRequest,
    "invalid_input": InvalidInput,
    "invalid_configuration": MalformedRequest,
    "deadline_missed": DeadlineMissed,
    "overloaded": ServiceOverloaded,
    "management_conflict": ManagementConflict,
    "deployment_conflict": ManagementConflict,
    "routing_conflict": ManagementConflict,
    "duplicate_application": ManagementConflict,
}


def error_from_response(status: int, payload: Any) -> ApiStatusError:
    """Build the typed exception for a non-2xx response."""
    error = payload.get("error", {}) if isinstance(payload, dict) else {}
    code = error.get("code", "internal")
    message = error.get("message", f"HTTP {status}")
    detail = error.get("detail")
    cls = _ERRORS_BY_CODE.get(code)
    if cls is None:
        cls = ServerError if status >= 500 else ApiStatusError
    return cls(status, code, message, detail)


# -- wire helpers --------------------------------------------------------------


def encode_input(x: Any) -> Any:
    """Render a query input as its JSON wire value.

    Numpy arrays/scalars become JSON numbers or arrays; ``bytes`` become
    base64 text (the server's schema decodes them back); everything else
    must already be JSON-representable.
    """
    if isinstance(x, np.ndarray):
        return x.tolist()
    if isinstance(x, np.generic):
        return x.item()
    if isinstance(x, (bytes, bytearray, memoryview)):
        return base64.b64encode(bytes(x)).decode("ascii")
    if isinstance(x, (list, tuple)):
        # Recurse only when an element actually needs conversion — plain
        # numeric vectors (the common case) pass through untouched instead
        # of paying one Python call per feature.
        if any(not isinstance(item, (int, float, str)) for item in x):
            return [encode_input(item) for item in x]
        return list(x)
    return x


def encode_binary_input(x: Any) -> Any:
    """Render a query input for the columnar binary wire encoding.

    Typed arrays and raw bytes travel natively — an ndarray becomes a
    zero-copy buffer segment on the wire and lands server-side as a typed
    array, skipping the JSON number round-trip entirely.  Everything else
    uses its JSON wire value, which the binary frame carries unchanged.
    """
    if isinstance(x, np.ndarray):
        # The serializer wants a contiguous buffer; a no-op for the
        # already-contiguous arrays applications send.
        return np.ascontiguousarray(x)
    if isinstance(x, (bytes, bytearray, memoryview)):
        return bytes(x)
    return encode_input(x)


@dataclass
class PredictionResult:
    """One prediction as returned over the wire."""

    query_id: int
    app_name: str
    output: Any
    confidence: float
    latency_ms: float
    default_used: bool
    models_used: List[str] = field(default_factory=list)
    models_missing: List[str] = field(default_factory=list)
    from_cache: bool = False

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PredictionResult":
        return cls(
            query_id=payload.get("query_id", -1),
            app_name=payload.get("app_name", ""),
            output=payload.get("output"),
            confidence=payload.get("confidence", 0.0),
            latency_ms=payload.get("latency_ms", 0.0),
            default_used=payload.get("default_used", False),
            models_used=list(payload.get("models_used", [])),
            models_missing=list(payload.get("models_missing", [])),
            from_cache=payload.get("from_cache", False),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for transport failures.

    Each call gets its own retry budget of ``max_attempts`` total tries.
    Between retries the client sleeps ``base_delay_s * multiplier**n``
    (capped at ``max_delay_s``), with up to ``jitter`` of the delay
    subtracted at random so a fleet of recovering clients does not
    reconnect in lockstep.

    What is retriable depends on how far the previous attempt got, never
    on the policy: a **connect failure** (nothing sent) is retriable for
    every method; a **stale keep-alive** (request sent, zero response
    bytes) is retriable only for GET — a POST may have executed
    server-side and deploying or updating twice is worse than surfacing
    the error; any failure after the first response byte is terminal.
    The exception is a **load-shed response** (429 or 503): the server
    answered without executing the request, so re-issuing is safe for
    every method, and the server's ``Retry-After`` hint (capped at
    ``max_delay_s``) replaces the computed backoff when present.
    When the budget runs out the last failure is surfaced as
    :class:`RetryBudgetExceeded`.  ``RetryPolicy(max_attempts=1)``
    disables retries entirely.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, retry_index: int, rng: random.Random) -> float:
        """The backoff before retry number ``retry_index`` (0-based)."""
        delay = min(self.base_delay_s * self.multiplier**retry_index, self.max_delay_s)
        if self.jitter:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


class _StaleConnection(Exception):
    """The server closed the keep-alive connection before answering at all."""


class _HttpConnection:
    """One keep-alive HTTP/1.1 connection with transparent re-connect.

    Transient failures are retried under the client's :class:`RetryPolicy`
    (bounded exponential backoff with jitter, one budget per call).  How far
    an attempt got decides what is safe to retry: a connect failure (nothing
    sent) retries for every method; the idle keep-alive race (request sent,
    zero response bytes) retries only **GET** requests — a POST that may
    have reached the server is never re-issued, deploy or update executing
    twice is worse than surfacing a :class:`TransportError` — and once the
    first response byte has been read, any failure is terminal for the same
    reason.  An exhausted budget surfaces as :class:`RetryBudgetExceeded`.
    """

    def __init__(
        self, host: str, port: int, retry_policy: Optional[RetryPolicy] = None
    ) -> None:
        self.host = host
        self.port = port
        self.retry_policy = retry_policy or RetryPolicy()
        self._rng = random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def is_connected(self) -> bool:
        return (
            self._writer is not None
            and not self._writer.is_closing()
            and self._reader is not None
            and not self._reader.at_eof()
        )

    async def connect(self) -> None:
        if self.is_connected:
            return
        await self._reset()
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from None
        sock = self._writer.get_extra_info("socket")
        if sock is not None and sock.family in (socket.AF_INET, socket.AF_INET6):
            # Each request is one write; don't let Nagle hold it back.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    async def close(self) -> None:
        await self._reset()

    async def _reset(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def request(
        self, method: str, path: str, body: Any = None, binary: bool = False
    ) -> Tuple[int, Any]:
        """Issue one request, returning ``(status, decoded payload)``.

        ``binary=True`` sends the body as a columnar binary frame and
        offers the columnar encoding in ``Accept``; the response is decoded
        by its ``Content-Type`` either way.
        """
        policy = self.retry_policy
        is_get = method.upper() == "GET"
        attempts = 0
        while True:
            attempts += 1
            try:
                await self.connect()
            except TransportError as exc:
                # Nothing was sent: safe to retry for every method.
                failure, retriable = exc, True
            else:
                try:
                    status, payload, retry_after = await self._round_trip(
                        method, path, body, binary
                    )
                except _StaleConnection as exc:
                    # The request went out but nothing of the response
                    # arrived.  Only an idempotent GET is re-issued; a POST
                    # may have executed server-side and must not run twice.
                    await self._reset()
                    failure = TransportError(
                        f"{method} {path} failed: {exc.args[0]}"
                    )
                    retriable = is_get
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    asyncio.IncompleteReadError,
                    OSError,
                ) as exc:
                    # The connection died mid-response: the request may have
                    # executed server-side, so never re-issue it.
                    await self._reset()
                    raise TransportError(
                        f"{method} {path} failed: {exc!r}"
                    ) from None
                else:
                    if status in (429, 503) and attempts < policy.max_attempts:
                        # The server shed the request without executing it, so
                        # re-issuing is safe for every method.  Honor its
                        # Retry-After hint (capped at the policy's max delay);
                        # fall back to the computed backoff when absent.
                        if retry_after is None:
                            delay = policy.delay_for(attempts - 1, self._rng)
                        else:
                            delay = min(retry_after, policy.max_delay_s)
                        if delay > 0:
                            await asyncio.sleep(delay)
                        continue
                    return status, payload
            if not retriable:
                raise failure from None
            if attempts >= policy.max_attempts:
                if attempts == 1:
                    raise failure from None
                raise RetryBudgetExceeded(
                    f"{method} {path} failed after {attempts} attempts: {failure}",
                    attempts=attempts,
                    last_error=failure,
                ) from None
            delay = policy.delay_for(attempts - 1, self._rng)
            if delay > 0:
                await asyncio.sleep(delay)

    async def _round_trip(
        self, method: str, path: str, body: Any, binary: bool = False
    ) -> Tuple[int, Any, Optional[float]]:
        if binary and body is not None:
            # Encode before touching the connection: an unencodable body
            # must fail cleanly, not poison the keep-alive stream.
            try:
                segments = serialize_buffers(body)
            except SerializationError as exc:
                raise ClipperClientError(
                    f"request body is not encodable as columnar: {exc}"
                ) from None
            length = serialized_nbytes(segments)
            content_type = COLUMNAR_CONTENT_TYPE
            accept = f"{COLUMNAR_CONTENT_TYPE}, application/json;q=0.5"
        else:
            payload = b""
            if body is not None:
                payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
            segments = [payload] if payload else []
            length = len(payload)
            content_type = "application/json"
            accept = "application/json"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Accept: {accept}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {length}\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            # The body is never joined with the head: binary segments (which
            # include zero-copy views of the caller's arrays) go out
            # writev-style.
            self._writer.write(head)
            if segments:
                self._writer.writelines(segments)
            await self._writer.drain()
            status_line = await self._reader.readline()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            # Failed while sending / before the first response byte — the
            # server closed the idle connection; an incomplete request is
            # discarded server-side, so this is retriable.
            raise _StaleConnection(f"connection lost before a response: {exc}") from None
        if not status_line:
            raise _StaleConnection("server closed the idle connection")
        parts = status_line.decode("ascii", "replace").split(maxsplit=2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise TransportError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionResetError("connection closed inside headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self._reader.readexactly(length) if length else b""
        if "close" in headers.get("connection", "").lower():
            await self._reset()
        retry_after: Optional[float] = None
        if status in (429, 503):
            # Delay-seconds form only (the server never sends HTTP dates);
            # an unparsable value is ignored rather than failing the call.
            raw = headers.get("retry-after")
            if raw:
                try:
                    retry_after = max(0.0, float(raw))
                except ValueError:
                    retry_after = None
        if not data:
            return status, None, retry_after
        # The response's own Content-Type picks the decoder — errors render
        # as JSON even on a binary exchange.
        response_type = headers.get("content-type", "").split(";")[0].strip().lower()
        if response_type == COLUMNAR_CONTENT_TYPE:
            try:
                return status, deserialize(data), retry_after
            except SerializationError as exc:
                raise TransportError(
                    f"{method} {path}: undecodable columnar response: {exc}"
                ) from None
        return status, json.loads(data.decode("utf-8")), retry_after


class _BaseAsyncClient:
    """Shared plumbing: one connection, error mapping, context management."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        retry_policy: Optional[RetryPolicy] = None,
        binary: bool = False,
    ) -> None:
        self._conn = _HttpConnection(host, port, retry_policy=retry_policy)
        self._binary = bool(binary)

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._conn.retry_policy

    @property
    def binary(self) -> bool:
        """Whether the client currently speaks the columnar binary encoding.

        Starts as the constructor's ``binary`` flag and drops to False
        permanently after a 415 from a server without the columnar decoder.
        """
        return self._binary

    async def connect(self) -> None:
        """Eagerly open the connection (otherwise opened on first request)."""
        await self._conn.connect()

    async def close(self) -> None:
        await self._conn.close()

    async def __aenter__(self):
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _call(self, method: str, path: str, body: Any = None) -> Any:
        status, payload = await self._conn.request(method, path, body)
        if status >= 400:
            raise error_from_response(status, payload)
        return payload

    async def _call_negotiated(
        self, method: str, path: str, build_body: Callable[[bool], Any]
    ) -> Any:
        """Issue a verb under the client's negotiated encoding.

        ``build_body(binary)`` renders the request body for the chosen
        encoding.  In binary mode, a 415 means the server has no columnar
        decoder: the client drops to JSON for the rest of its life and
        transparently re-issues this request — safe, because a 415 is
        raised before the handler runs.
        """
        if self._binary:
            status, payload = await self._conn.request(
                method, path, build_body(True), binary=True
            )
            if status != 415:
                if status >= 400:
                    raise error_from_response(status, payload)
                return payload
            self._binary = False
        return await self._call(method, path, build_body(False))


class AsyncClipperClient(_BaseAsyncClient):
    """The application's view of Clipper: ``predict`` and ``update`` over REST.

    Constructed with ``binary=True``, the two application verbs negotiate
    the columnar binary encoding (ndarray inputs travel as raw typed
    buffers) with transparent JSON fallback on 415; introspection verbs
    always speak JSON.
    """

    async def predict(
        self,
        app_name: str,
        x: Any,
        user_id: Optional[str] = None,
        latency_slo_ms: Optional[float] = None,
    ) -> PredictionResult:
        """Request a prediction from the named application."""

        def build_body(binary: bool) -> Dict[str, Any]:
            body: Dict[str, Any] = {
                "input": encode_binary_input(x) if binary else encode_input(x)
            }
            if user_id is not None:
                body["user_id"] = user_id
            if latency_slo_ms is not None:
                body["latency_slo_ms"] = latency_slo_ms
            return body

        payload = await self._call_negotiated(
            "POST", f"{API_PREFIX}/{app_name}/predict", build_body
        )
        return PredictionResult.from_payload(payload)

    async def update(
        self,
        app_name: str,
        x: Any,
        label: Any,
        user_id: Optional[str] = None,
    ) -> None:
        """Send ground-truth feedback for an earlier prediction."""

        def build_body(binary: bool) -> Dict[str, Any]:
            encode = encode_binary_input if binary else encode_input
            body: Dict[str, Any] = {"input": encode(x), "label": encode(label)}
            if user_id is not None:
                body["user_id"] = user_id
            return body

        await self._call_negotiated(
            "POST", f"{API_PREFIX}/{app_name}/update", build_body
        )

    async def applications(self) -> List[Dict[str, Any]]:
        """The schemas of every application the server hosts."""
        payload = await self._call("GET", f"{API_PREFIX}/applications")
        return payload["applications"]

    async def schema(self, app_name: str) -> Dict[str, Any]:
        """The declared serving contract of one application."""
        return await self._call("GET", f"{API_PREFIX}/{app_name}/schema")

    async def health(self) -> Dict[str, Any]:
        """Server liveness plus the hosted application names."""
        return await self._call("GET", f"{API_PREFIX}/health")


class AsyncAdminClient(_BaseAsyncClient):
    """The operator's view: the management verbs of the admin API."""

    async def deploy(
        self,
        app_name: str,
        model_name: str,
        factory: str,
        version: Optional[int] = None,
        num_replicas: Optional[int] = None,
        batching: Optional[Dict[str, Any]] = None,
        serialize_rpc: Optional[bool] = None,
        activate: Optional[bool] = None,
        transport: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Deploy a model version built from a server-registered factory."""
        body: Dict[str, Any] = {"model_name": model_name, "factory": factory}
        if version is not None:
            body["version"] = version
        if num_replicas is not None:
            body["num_replicas"] = num_replicas
        if batching is not None:
            body["batching"] = batching
        if serialize_rpc is not None:
            body["serialize_rpc"] = serialize_rpc
        if activate is not None:
            body["activate"] = activate
        if transport is not None:
            body["transport"] = transport
        return await self._call(
            "POST", f"{API_PREFIX}/admin/{app_name}/deploy", body
        )

    async def undeploy(self, app_name: str, model: str) -> Dict[str, Any]:
        return await self._call(
            "POST", f"{API_PREFIX}/admin/{app_name}/undeploy", {"model": model}
        )

    async def scale(
        self, app_name: str, model: str, num_replicas: int
    ) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/scale",
            {"model": model, "num_replicas": num_replicas},
        )

    async def rollout(
        self, app_name: str, model_name: str, version: int
    ) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/rollout",
            {"model_name": model_name, "version": version},
        )

    async def rollback(self, app_name: str, model_name: str) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/rollback",
            {"model_name": model_name},
        )

    async def start_canary(
        self, app_name: str, model_name: str, version: int, weight: float
    ) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/start_canary",
            {"model_name": model_name, "version": version, "weight": weight},
        )

    async def adjust_canary(
        self, app_name: str, model_name: str, weight: float
    ) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/adjust_canary",
            {"model_name": model_name, "weight": weight},
        )

    async def promote(self, app_name: str, model_name: str) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/promote",
            {"model_name": model_name},
        )

    async def abort_canary(self, app_name: str, model_name: str) -> Dict[str, Any]:
        return await self._call(
            "POST",
            f"{API_PREFIX}/admin/{app_name}/abort_canary",
            {"model_name": model_name},
        )

    async def models(self, app_name: str) -> Dict[str, Any]:
        payload = await self._call("GET", f"{API_PREFIX}/admin/{app_name}/models")
        return payload["models"]

    async def model_info(self, app_name: str, model_name: str) -> Dict[str, Any]:
        return await self._call(
            "GET", f"{API_PREFIX}/admin/{app_name}/models/{model_name}"
        )

    async def health(self, app_name: str) -> Dict[str, Any]:
        return await self._call("GET", f"{API_PREFIX}/admin/{app_name}/health")

    async def metrics(self, app_name: str) -> Dict[str, Any]:
        return await self._call("GET", f"{API_PREFIX}/admin/{app_name}/metrics")

    async def routing(self, app_name: str) -> Dict[str, Any]:
        payload = await self._call("GET", f"{API_PREFIX}/admin/{app_name}/routing")
        return payload["routing"]


class _SyncWrapper:
    """Runs an async client's coroutines on a private event loop."""

    _async_cls = None

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        retry_policy: Optional[RetryPolicy] = None,
        binary: bool = False,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._client = self._async_cls(
            host, port, retry_policy=retry_policy, binary=binary
        )

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    def connect(self) -> None:
        self._run(self._client.connect())

    def close(self) -> None:
        self._run(self._client.close())
        self._loop.close()

    def __enter__(self):
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClipperClient(_SyncWrapper):
    """Blocking wrapper around :class:`AsyncClipperClient`."""

    _async_cls = AsyncClipperClient

    def predict(self, app_name, x, user_id=None, latency_slo_ms=None):
        return self._run(
            self._client.predict(
                app_name, x, user_id=user_id, latency_slo_ms=latency_slo_ms
            )
        )

    def update(self, app_name, x, label, user_id=None):
        return self._run(self._client.update(app_name, x, label, user_id=user_id))

    def applications(self):
        return self._run(self._client.applications())

    def schema(self, app_name):
        return self._run(self._client.schema(app_name))

    def health(self):
        return self._run(self._client.health())


class AdminClient(_SyncWrapper):
    """Blocking wrapper around :class:`AsyncAdminClient`."""

    _async_cls = AsyncAdminClient

    def __getattr__(self, name):
        verb = getattr(self._client, name)
        if not callable(verb):
            raise AttributeError(name)

        def call(*args, **kwargs):
            return self._run(verb(*args, **kwargs))

        return call
