"""Client SDK for the Clipper REST API.

Applications and operator tooling import this package — and nothing else
from the library — to talk to a served Clipper: the serving engine stays on
the other side of the HTTP boundary, exactly as in the paper's Figure 2.
Clients built with ``binary=True`` negotiate the columnar binary wire
encoding (``COLUMNAR_CONTENT_TYPE``) for predict/update, with transparent
JSON fallback against servers that do not speak it.
"""

from repro.client.client import (
    COLUMNAR_CONTENT_TYPE,
    AdminClient,
    ApiStatusError,
    AsyncAdminClient,
    AsyncClipperClient,
    ClipperClient,
    ClipperClientError,
    DeadlineMissed,
    InvalidInput,
    MalformedRequest,
    ManagementConflict,
    PredictionResult,
    RetryBudgetExceeded,
    RetryPolicy,
    RouteNotFound,
    ServerError,
    TransportError,
    UnknownApplication,
    encode_binary_input,
    encode_input,
)

__all__ = [
    "COLUMNAR_CONTENT_TYPE",
    "AdminClient",
    "ApiStatusError",
    "AsyncAdminClient",
    "AsyncClipperClient",
    "ClipperClient",
    "ClipperClientError",
    "DeadlineMissed",
    "InvalidInput",
    "MalformedRequest",
    "ManagementConflict",
    "PredictionResult",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "RouteNotFound",
    "ServerError",
    "TransportError",
    "UnknownApplication",
    "encode_binary_input",
    "encode_input",
]
