"""Client SDK for the Clipper REST API.

Applications and operator tooling import this package — and nothing else
from the library — to talk to a served Clipper: the serving engine stays on
the other side of the HTTP boundary, exactly as in the paper's Figure 2.
"""

from repro.client.client import (
    AdminClient,
    ApiStatusError,
    AsyncAdminClient,
    AsyncClipperClient,
    ClipperClient,
    ClipperClientError,
    DeadlineMissed,
    InvalidInput,
    MalformedRequest,
    ManagementConflict,
    PredictionResult,
    RetryBudgetExceeded,
    RetryPolicy,
    RouteNotFound,
    ServerError,
    TransportError,
    UnknownApplication,
)

__all__ = [
    "AdminClient",
    "ApiStatusError",
    "AsyncAdminClient",
    "AsyncClipperClient",
    "ClipperClient",
    "ClipperClientError",
    "DeadlineMissed",
    "InvalidInput",
    "MalformedRequest",
    "ManagementConflict",
    "PredictionResult",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "RouteNotFound",
    "ServerError",
    "TransportError",
    "UnknownApplication",
]
