"""Per-replica batch dispatchers.

One dispatcher task runs for every container replica (paper §4.4.1: adaptive
batching is performed independently per replica).  The loop is:

1. Ask the replica's batch-size controller for the current maximum size.
2. Drain up to that many queries from the model's batching queue, optionally
   waiting ``batch_wait_timeout_ms`` for more under light load (§4.3.2).
3. Send the batch over RPC to the container, measure the evaluation latency.
4. Feed the (size, latency) observation back into the controller and resolve
   each query's future with its output.

Dispatchers are detachable: :meth:`ReplicaDispatcher.stop` leaves the shared
queue live (queued queries stay put for the model's other replicas) and a
stopped dispatcher can be re-started, which is how the management plane
scales replicas and quarantines/recovers unhealthy ones at runtime.  When a
replica fails a batch, queries are re-enqueued onto the shared queue (up to
``max_retries`` per query) so a single sick replica does not fail queries
that a healthy sibling could still serve; after a failed batch the loop
backs off briefly (``failure_cooldown_ms``) so a dead replica does not spin
stealing work from healthy ones while the health monitor converges.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

from repro.batching.controllers import BatchSizeController
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.containers.replica import ContainerReplica
from repro.core.exceptions import ContainerError, PredictionTimeoutError, RpcError
from repro.core.metrics import MetricsRegistry
from repro.core.types import BatchStats


class ReplicaDispatcher:
    """Drains a batching queue into one container replica."""

    def __init__(
        self,
        replica: ContainerReplica,
        queue: BatchingQueue,
        controller: BatchSizeController,
        batch_wait_timeout_ms: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        drop_expired: bool = True,
        max_retries: int = 0,
        failure_cooldown_ms: float = 20.0,
    ) -> None:
        self.replica = replica
        self.queue = queue
        self.controller = controller
        self.batch_wait_timeout_ms = batch_wait_timeout_ms
        self.metrics = metrics or MetricsRegistry()
        self.drop_expired = drop_expired
        self.max_retries = max_retries
        self.failure_cooldown_ms = failure_cooldown_ms
        self.batch_history: List[BatchStats] = []
        #: Failed batches since the last success — read by the health
        #: monitor as a passive unhealthiness signal alongside its probes.
        self.consecutive_failures = 0
        self.batches_failed = 0
        self._task: Optional[asyncio.Task] = None
        self._running = False
        # Metric handles are resolved once per dispatcher instead of per
        # batch: the registry lookup rebuilds the f-string name and takes a
        # lock on every call, which adds up at high batch rates.
        prefix = f"model.{replica.model_id}"
        self._batch_latency_hist = self.metrics.histogram(f"{prefix}.batch_latency_ms")
        self._batch_size_hist = self.metrics.histogram(f"{prefix}.batch_size")
        self._throughput_meter = self.metrics.meter(f"{prefix}.throughput")

    def start(self) -> asyncio.Task:
        """Start the dispatch loop as a background task."""
        if self._task is None or self._task.done():
            self._running = True
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self) -> None:
        """Stop the dispatch loop after the in-flight batch completes."""
        self._running = False
        if self._task is not None:
            # Wake the loop if it is parked waiting for work (or topping up
            # a delayed batch) so shutdown is prompt; other dispatchers
            # sharing the queue see an empty or partial batch and simply
            # dispatch it / re-enter their wait.
            self.queue.wake_all()
            try:
                await asyncio.wait_for(self._task, timeout=5.0)
            except asyncio.TimeoutError:
                self._task.cancel()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass
            self._task = None

    async def _run(self) -> None:
        while self._running:
            if self.queue.closed and self.queue.qsize() == 0:
                return
            batch = await self.queue.get_batch(
                max_batch_size=self.controller.current_batch_size(),
                batch_wait_timeout_ms=self.batch_wait_timeout_ms,
            )
            if not batch:
                continue
            failures_before = self.consecutive_failures
            await self.dispatch_batch(batch)
            if (
                self._running
                and self.consecutive_failures > failures_before
                and self.failure_cooldown_ms > 0
            ):
                # Back off after a failed batch: re-enqueued queries go to
                # healthy siblings first instead of being re-stolen by this
                # (likely dead) replica in a tight loop.
                await asyncio.sleep(self.failure_cooldown_ms / 1000.0)

    async def dispatch_batch(self, batch: List[PendingQuery]) -> None:
        """Evaluate one batch on the replica and resolve its futures."""
        now = time.monotonic()
        if self.drop_expired:
            live, expired = [], []
            for item in batch:
                (expired if item.expired(now) else live).append(item)
            for item in expired:
                if not item.future.done():
                    item.future.set_exception(
                        PredictionTimeoutError(item.query_id or -1, 0.0)
                    )
            batch = live
            if not batch:
                return

        queue_time_ms = (now - min(item.enqueue_time for item in batch)) * 1000.0
        inputs = [item.input for item in batch]
        start = time.perf_counter()
        try:
            response = await self.replica.predict_batch(inputs)
        except (RpcError, ContainerError) as exc:
            self._handle_failed_batch(batch, exc)
            return
        latency_ms = (time.perf_counter() - start) * 1000.0

        self.controller.observe(len(batch), latency_ms)
        stats = BatchStats(
            model_id=self.replica.model_id,
            replica_id=self.replica.replica_id,
            batch_size=len(batch),
            latency_ms=latency_ms,
            queue_time_ms=queue_time_ms,
        )
        self.batch_history.append(stats)
        self._batch_latency_hist.observe(latency_ms)
        self._batch_size_hist.observe(len(batch))
        self._throughput_meter.mark(len(batch))

        if not response.ok:
            self._handle_failed_batch(
                batch, ContainerError(str(self.replica.model_id), response.error or "unknown")
            )
            return
        self.consecutive_failures = 0
        for item, output in zip(batch, response.outputs):
            if not item.future.done():
                item.future.set_result(output)

    def _handle_failed_batch(self, batch: List[PendingQuery], error: Exception) -> None:
        """Requeue failed queries with retry budget left; fail the rest."""
        self.consecutive_failures += 1
        self.batches_failed += 1
        for item in batch:
            if item.future.done():
                continue
            if item.attempts < self.max_retries and not self.queue.closed:
                item.attempts += 1
                try:
                    self.queue.put_nowait(item)
                    continue
                except (RuntimeError, asyncio.QueueFull):
                    pass  # queue closed or full under our feet: fall through
            item.future.set_exception(error)
