"""Per-replica batch dispatchers.

One dispatcher task runs for every container replica (paper §4.4.1: adaptive
batching is performed independently per replica).  The loop is:

1. Ask the replica's batch-size controller for the current maximum size.
2. Drain up to that many queries from the model's batching queue, optionally
   waiting ``batch_wait_timeout_ms`` for more under light load (§4.3.2).
3. Send the batch over RPC to the container, measure the evaluation latency.
4. Feed the (size, latency) observation back into the controller and resolve
   each query's future with its output.

Pipelining
----------
The dispatch loop keeps a bounded window of batches in flight
(``pipeline_window``, default 2): while batch ``k``'s RPC round-trip is
outstanding, the loop goes straight back to the queue, drains batch ``k+1``
and *sends* it — so queue-drain and request encoding overlap with the
container's evaluation instead of following it.  The RPC client
demultiplexes responses by request id and the container server evaluates
strictly in arrival order, so per-query results always resolve the right
futures.  ``pipeline_window=1`` restores the strictly serial loop: with a
window above 1 a batch's measured latency includes time spent queued behind
its predecessor inside the container, which slightly inflates the latency
signal the adaptive batch-size controllers feed on.

Dispatchers are detachable: :meth:`ReplicaDispatcher.stop` leaves the shared
queue live (queued queries stay put for the model's other replicas) and a
stopped dispatcher can be re-started, which is how the management plane
scales replicas and quarantines/recovers unhealthy ones at runtime.  When a
replica fails a batch, queries are re-enqueued onto the shared queue (up to
``max_retries`` per query) so a single sick replica does not fail queries
that a healthy sibling could still serve; after a failed batch the loop
backs off briefly (``failure_cooldown_ms``) so a dead replica does not spin
stealing work from healthy ones while the health monitor converges.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, List, Optional, Set

from repro.batching.controllers import BatchSizeController
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.containers.replica import ContainerReplica
from repro.core.exceptions import ContainerError, PredictionTimeoutError, RpcError
from repro.core.metrics import MetricsRegistry
from repro.core.types import BatchStats
from repro.observability.logging import get_logger
from repro.observability.tracing import TRACE_RETRIED

logger = get_logger("batching.dispatcher")


class ReplicaDispatcher:
    """Drains a batching queue into one container replica."""

    def __init__(
        self,
        replica: ContainerReplica,
        queue: BatchingQueue,
        controller: BatchSizeController,
        batch_wait_timeout_ms: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        drop_expired: bool = True,
        max_retries: int = 0,
        failure_cooldown_ms: float = 20.0,
        pipeline_window: int = 2,
        late_result_sink: Optional[Callable[[PendingQuery, Any], None]] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self.replica = replica
        self.queue = queue
        self.controller = controller
        self.batch_wait_timeout_ms = batch_wait_timeout_ms
        self.metrics = metrics or MetricsRegistry()
        self.drop_expired = drop_expired
        self.max_retries = max_retries
        self.failure_cooldown_ms = failure_cooldown_ms
        self.pipeline_window = max(1, int(pipeline_window))
        #: Called with (item, output) when a query's future was already
        #: resolved (straggler deadline) by the time its container output
        #: arrived — the serving engine uses it to late-fill the prediction
        #: cache.
        self.late_result_sink = late_result_sink
        self.batch_history: List[BatchStats] = []
        #: Failed batches since the last success — read by the health
        #: monitor as a passive unhealthiness signal alongside its probes.
        self.consecutive_failures = 0
        self.batches_failed = 0
        self._task: Optional[asyncio.Task] = None
        self._running = False
        self._inflight: Set[asyncio.Task] = set()
        self._inflight_done: Optional[asyncio.Event] = None
        self._cooldown_due = False
        # Metric handles are resolved once per dispatcher instead of per
        # batch: the registry lookup rebuilds the f-string name and takes a
        # lock on every call, which adds up at high batch rates.
        prefix = f"model.{replica.model_id}"
        self._batch_latency_hist = self.metrics.histogram(f"{prefix}.batch_latency_ms")
        self._batch_size_hist = self.metrics.histogram(f"{prefix}.batch_size")
        self._throughput_meter = self.metrics.meter(f"{prefix}.throughput")
        # Per-stage latency attribution uses the labels() family fast path:
        # the child names are hashed here, once, and each batch costs two
        # plain observe calls against pre-resolved handles.
        stage_family = self.metrics.histogram_family(f"{prefix}.stage_ms", label="stage")
        self._queue_wait_hist = stage_family.labels("queue_wait")
        self._container_eval_hist = stage_family.labels("container_eval")
        #: The engine's Tracer (None when this dispatcher serves an untraced
        #: engine); traced queries in a batch get queue-wait/RPC/eval spans.
        self._tracer = tracer

    def start(self) -> asyncio.Task:
        """Start the dispatch loop as a background task."""
        if self._task is None or self._task.done():
            self._running = True
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self) -> None:
        """Stop the dispatch loop after the in-flight batches complete."""
        self._running = False
        if self._task is not None:
            # Wake the loop if it is parked waiting for work (or topping up
            # a delayed batch) so shutdown is prompt; other dispatchers
            # sharing the queue see an empty or partial batch and simply
            # dispatch it / re-enter their wait.
            self.queue.wake_all()
            try:
                await asyncio.wait_for(self._task, timeout=5.0)
            except asyncio.TimeoutError:
                self._task.cancel()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass
            self._task = None

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        self._inflight_done = asyncio.Event()
        try:
            while self._running:
                if self.queue.closed and self.queue.qsize() == 0:
                    return
                batch = await self.queue.get_batch(
                    max_batch_size=self.controller.current_batch_size(),
                    batch_wait_timeout_ms=self.batch_wait_timeout_ms,
                )
                if not batch:
                    continue
                if self._cooldown_due:
                    # Back off after a failed batch *before* sending anything
                    # else: the queries just drained go back onto the shared
                    # queue so healthy siblings pick them up first, instead
                    # of this (likely dead) replica re-stealing them in a
                    # tight loop.  The flag is set by _handle_failed_batch
                    # before it requeues, so it is already visible when the
                    # requeued queries wake this loop.
                    self._cooldown_due = False
                    if self._running and self.failure_cooldown_ms > 0:
                        batch = self._release_for_cooldown(batch)
                        await asyncio.sleep(self.failure_cooldown_ms / 1000.0)
                        if not batch:
                            continue
                if self.pipeline_window == 1:
                    await self.dispatch_batch(batch)
                else:
                    # Pipelined: send this batch as a task and immediately go
                    # back to draining the queue, so the next batch is
                    # assembled and encoded while this one evaluates.
                    await self._reserve_window_slot()
                    task = loop.create_task(self._dispatch_guarded(batch))
                    self._inflight.add(task)
                    task.add_done_callback(self._on_dispatch_done)
        finally:
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)

    def _release_for_cooldown(self, batch: List[PendingQuery]) -> List[PendingQuery]:
        """Put a drained batch back on the shared queue before backing off.

        Returns the queries that could not be requeued (queue closed or
        full) — the caller dispatches those itself rather than lose them.
        """
        remaining: List[PendingQuery] = []
        for index, item in enumerate(batch):
            try:
                self.queue.put_nowait(item)
            except (RuntimeError, asyncio.QueueFull):
                remaining.extend(batch[index:])
                break
        return remaining

    async def _reserve_window_slot(self) -> None:
        """Wait until fewer than ``pipeline_window`` batches are in flight."""
        while len(self._inflight) >= self.pipeline_window:
            self._inflight_done.clear()
            await self._inflight_done.wait()

    async def _dispatch_guarded(self, batch: List[PendingQuery]) -> None:
        """Pipelined dispatch wrapper: no exception may strand the futures.

        :meth:`dispatch_batch` handles RPC/container failures itself; an
        exception escaping it is a bug, but the batch's callers must still
        see a failure rather than hang, and the window slot must free up.
        """
        try:
            await self.dispatch_batch(batch)
        except asyncio.CancelledError:
            self._handle_failed_batch(
                batch, RpcError("dispatcher stopped with the batch in flight")
            )
            raise
        except Exception as exc:
            self._handle_failed_batch(batch, exc)

    def _on_dispatch_done(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        if self._inflight_done is not None:
            self._inflight_done.set()

    async def dispatch_batch(self, batch: List[PendingQuery]) -> None:
        """Evaluate one batch on the replica and resolve its futures."""
        # Fast path: queries without deadlines (no straggler mitigation /
        # feedback re-evaluations) skip the live/expired partition entirely —
        # ``any`` short-circuits on the first deadline-carrying query.
        carries_deadline = any(item.deadline is not None for item in batch)
        if self.drop_expired and carries_deadline:
            now = time.monotonic()
            live, expired = [], []
            for item in batch:
                (expired if item.expired(now) else live).append(item)
            for item in expired:
                if not item.future.done():
                    item.future.set_exception(
                        PredictionTimeoutError(item.query_id or -1, 0.0)
                    )
            batch = live
            if not batch:
                # A 100%-expired batch is never dispatched.
                return

        t_batch = time.monotonic()
        queue_time_ms = (t_batch - min(item.enqueue_time for item in batch)) * 1000.0
        # Tracing rides along only for batches that carry traced queries:
        # the common untraced batch pays one attribute read and one ``any``
        # scan, and no extra wire bytes.
        span_log: Optional[list] = None
        traced: Optional[List[PendingQuery]] = None
        trace_ids: Optional[List[Any]] = None
        tracer = self._tracer
        if tracer is not None and tracer.active and any(
            item.trace is not None for item in batch
        ):
            traced = [item for item in batch if item.trace is not None]
            trace_ids = [item.trace.trace_id for item in traced]
            span_log = []
        inputs = [item.input for item in batch]
        # Deadline propagation: batches with deadline-carrying queries send
        # the per-entry absolute deadlines on the wire (0.0 = none) so the
        # container can skip entries that expire in transit.  Deadline-free
        # batches send nothing extra.
        deadlines = (
            [item.deadline or 0.0 for item in batch]
            if self.drop_expired and carries_deadline
            else None
        )
        start = time.perf_counter()
        try:
            response = await self.replica.predict_batch(
                inputs, trace=trace_ids, span_log=span_log, deadlines=deadlines
            )
        except (RpcError, ContainerError) as exc:
            self._handle_failed_batch(batch, exc)
            return
        latency_ms = (time.perf_counter() - start) * 1000.0

        self.controller.observe(len(batch), latency_ms)
        stats = BatchStats(
            model_id=self.replica.model_id,
            replica_id=self.replica.replica_id,
            batch_size=len(batch),
            latency_ms=latency_ms,
            queue_time_ms=queue_time_ms,
        )
        self.batch_history.append(stats)
        self._batch_latency_hist.observe(latency_ms)
        self._batch_size_hist.observe(len(batch))
        self._throughput_meter.mark(len(batch))
        self._queue_wait_hist.observe(queue_time_ms)
        self._container_eval_hist.observe(response.container_latency_ms)

        if not response.ok:
            self._handle_failed_batch(
                batch, ContainerError(str(self.replica.model_id), response.error or "unknown")
            )
            return
        self.consecutive_failures = 0
        if traced is not None:
            self._record_batch_spans(traced, span_log, response, t_batch)
        sink = self.late_result_sink
        skipped = set(response.skipped) if response.skipped else None
        outputs = iter(response.outputs)
        for index, item in enumerate(batch):
            future = item.future
            if skipped is not None and index in skipped:
                # The container declined this entry: its deadline expired in
                # transit.  The straggler sweeper has usually already
                # resolved the future with DEADLINE_MISS; if not, surface
                # the timeout here.
                if not future.done():
                    future.set_exception(
                        PredictionTimeoutError(item.query_id or -1, 0.0)
                    )
                continue
            output = next(outputs)
            if not future.done():
                future.set_result(output)
            elif (
                sink is not None
                and not future.cancelled()
                and future.exception() is None
            ):
                # The straggler deadline already resolved this future; hand
                # the late output to the engine so it still reaches the
                # prediction cache.
                sink(item, output)

    def _record_batch_spans(
        self,
        traced: List[PendingQuery],
        span_log: Optional[list],
        response: Any,
        t_batch: float,
    ) -> None:
        """Stamp the batch's lifecycle spans onto each traced query.

        Must run before the batch's futures resolve so the engine's
        :meth:`Tracer.finish` sees the spans; contexts already committed by
        the straggler deadline are safe to append to because committed
        records share (do not copy) the context's span list.
        """
        t_done = time.monotonic()
        rpc_spans = span_log or []
        eval_start, eval_end = response.eval_start, response.eval_end
        for item in traced:
            spans = item.trace.spans
            spans.append(("queue.wait", item.enqueue_time, t_batch, None))
            if rpc_spans:
                # batch.assemble covers drain + encode, up to the RPC send.
                spans.append(("batch.assemble", t_batch, rpc_spans[0][1], None))
                spans.extend(rpc_spans)
            if eval_end:
                spans.append(("container.eval", eval_start, eval_end, None))
                spans.append(("rpc.recv", eval_end, t_done, None))

    def _handle_failed_batch(self, batch: List[PendingQuery], error: Exception) -> None:
        """Requeue failed queries with retry budget left; fail the rest."""
        self.consecutive_failures += 1
        self.batches_failed += 1
        self._cooldown_due = True
        logger.warning(
            "batch failed on %s: %s",
            self.replica.name,
            error,
            extra={
                "model": str(self.replica.model_id),
                "replica_id": self.replica.replica_id,
                "batch_size": len(batch),
                "error_type": type(error).__name__,
                "consecutive_failures": self.consecutive_failures,
            },
        )
        now = 0.0
        for item in batch:
            if item.future.done():
                continue
            trace = item.trace
            if trace is not None:
                if not now:
                    now = time.monotonic()
                trace.flags |= TRACE_RETRIED
                trace.spans.append(
                    ("batch.retry", now, now, {"error": type(error).__name__})
                )
            if item.attempts < self.max_retries and not self.queue.closed:
                item.attempts += 1
                try:
                    self.queue.put_nowait(item)
                    continue
                except (RuntimeError, asyncio.QueueFull):
                    pass  # queue closed or full under our feet: fall through
            item.future.set_exception(error)
