"""Quantile-regression batch-size controller (paper §4.3.1).

The paper observed a stable, roughly linear relationship between batch size
and latency for its model containers (Figure 3) and therefore explored
fitting a quantile regression of the 99th-percentile latency as a function
of batch size, then setting the maximum batch size to the largest value
whose predicted P99 latency still meets the SLO.  The two strategies perform
nearly identically (Figure 4); AIMD remains the default because it is
simpler and self-correcting.

The fit minimises the pinball (quantile) loss for the line
``latency = intercept + slope * batch_size`` via a small linear program
solved with ``scipy.optimize.linprog``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.batching.controllers import BatchSizeController
from repro.core.exceptions import ConfigurationError


def fit_quantile_line(
    batch_sizes: np.ndarray, latencies_ms: np.ndarray, quantile: float = 0.99
) -> Tuple[float, float]:
    """Fit ``latency ≈ intercept + slope * batch_size`` at the given quantile.

    Returns ``(intercept, slope)``.  Uses the standard LP formulation of
    quantile regression: minimise ``q·u + (1-q)·v`` subject to
    ``y - (a + b·x) = u - v`` with ``u, v ≥ 0``.
    """
    x = np.asarray(batch_sizes, dtype=float).ravel()
    y = np.asarray(latencies_ms, dtype=float).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError("batch_sizes and latencies_ms must align")
    if x.shape[0] < 2:
        raise ValueError("at least two observations are required")
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")

    n = x.shape[0]
    # Decision variables: [a, b, u_1..u_n, v_1..v_n]
    c = np.concatenate([[0.0, 0.0], np.full(n, quantile), np.full(n, 1.0 - quantile)])
    A_eq = np.zeros((n, 2 + 2 * n))
    A_eq[:, 0] = 1.0  # a
    A_eq[:, 1] = x  # b * x
    A_eq[:, 2 : 2 + n] = np.eye(n)  # + u
    A_eq[:, 2 + n :] = -np.eye(n)  # - v
    b_eq = y
    bounds = [(None, None), (None, None)] + [(0.0, None)] * (2 * n)
    result = linprog(c, A_eq=A_eq, b_eq=b_eq, bounds=bounds, method="highs")
    if not result.success:
        # Fall back to a least-squares line shifted to the empirical quantile,
        # which is close enough for the controller's purposes.
        slope, intercept = np.polyfit(x, y, 1)
        residuals = y - (intercept + slope * x)
        intercept += float(np.quantile(residuals, quantile))
        return float(intercept), float(slope)
    intercept, slope = float(result.x[0]), float(result.x[1])
    return intercept, slope


class QuantileRegressionController(BatchSizeController):
    """Sets the max batch size from a P99-latency regression against batch size.

    Until enough observations spanning at least two distinct batch sizes have
    accumulated, the controller behaves like a conservative additive-increase
    explorer; afterwards it solves the quantile regression over a sliding
    window and picks the largest batch size whose predicted quantile latency
    is within the SLO.
    """

    def __init__(
        self,
        slo_ms: float,
        quantile: float = 0.99,
        window: int = 200,
        initial_batch_size: int = 1,
        additive_increase: int = 1,
        refit_interval: int = 10,
        max_batch_size: int = 4096,
    ) -> None:
        super().__init__(slo_ms=slo_ms, max_batch_size=max_batch_size)
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        if window < 4:
            raise ConfigurationError("window must be >= 4")
        if refit_interval < 1:
            raise ConfigurationError("refit_interval must be >= 1")
        self.quantile = quantile
        self.window = window
        self.additive_increase = additive_increase
        self.refit_interval = refit_interval
        self._observations: Deque[Tuple[int, float]] = deque(maxlen=window)
        self._batch_size = self._clamp(initial_batch_size)
        self._since_refit = 0
        self._last_latency_ms: Optional[float] = None
        self.intercept_: Optional[float] = None
        self.slope_: Optional[float] = None

    def current_batch_size(self) -> int:
        return self._batch_size

    def observe(self, batch_size: int, latency_ms: float) -> None:
        self._observations.append((int(batch_size), float(latency_ms)))
        self._since_refit += 1
        self._last_latency_ms = float(latency_ms)

        distinct_sizes = {size for size, _ in self._observations}
        if len(self._observations) < 8 or len(distinct_sizes) < 2:
            # Exploration phase: grow additively (and back off on SLO misses)
            # until the regression has something to fit.
            if latency_ms > self.slo_ms:
                self._batch_size = max(1, int(self._batch_size * 0.9))
            elif batch_size >= self._batch_size:
                self._batch_size = self._clamp(self._batch_size + self.additive_increase)
            return

        if self._since_refit >= self.refit_interval or latency_ms > self.slo_ms:
            self._refit()
            self._since_refit = 0

    def _refit(self) -> None:
        sizes = np.array([size for size, _ in self._observations], dtype=float)
        latencies = np.array([lat for _, lat in self._observations], dtype=float)
        intercept, slope = fit_quantile_line(sizes, latencies, self.quantile)
        self.intercept_, self.slope_ = intercept, slope
        if slope <= 1e-9:
            # Latency is flat in batch size within the window: allow growth
            # one step beyond the largest size we have tried so far.
            self._batch_size = self._clamp(sizes.max() + self.additive_increase)
            return
        predicted_max = (self.slo_ms - intercept) / slope
        candidate = self._clamp(np.floor(predicted_max))
        if (
            candidate <= self._batch_size
            and self._last_latency_ms is not None
            and self._last_latency_ms <= self.slo_ms
        ):
            # The regression can be pessimistic when the window only contains
            # a narrow range of (noisy) small batch sizes; as long as the most
            # recent batch met the SLO, keep exploring upward so the
            # controller cannot lock itself into tiny batches.
            candidate = self._clamp(self._batch_size + self.additive_increase)
        self._batch_size = candidate
