"""Batch-size controllers: the common interface plus the static baselines.

A controller answers one question — "how many queries may the next batch
contain?" — and learns from the observed (batch size, latency) pairs that
the dispatcher feeds back after every batch.  The paper evaluates three
strategies (Figure 4): the adaptive AIMD scheme (the default), a quantile-
regression estimator of the P99 latency/batch-size relationship, and the
no-batching baseline.  A fixed-size controller rounds out the set and is
used by the TensorFlow-Serving-like comparator.
"""

from __future__ import annotations


from repro.core.config import BatchingConfig
from repro.core.exceptions import ConfigurationError


class BatchSizeController:
    """Interface for maximum-batch-size control."""

    def __init__(self, slo_ms: float, max_batch_size: int = 4096) -> None:
        if slo_ms <= 0:
            raise ConfigurationError("slo_ms must be positive")
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        self.slo_ms = slo_ms
        self.hard_max_batch_size = max_batch_size

    def current_batch_size(self) -> int:
        """The maximum number of queries the next batch may contain."""
        raise NotImplementedError

    def observe(self, batch_size: int, latency_ms: float) -> None:
        """Report the measured evaluation latency of a dispatched batch."""
        raise NotImplementedError

    def _clamp(self, value: float) -> int:
        return int(max(1, min(self.hard_max_batch_size, value)))


class FixedBatchSizeController(BatchSizeController):
    """Always uses the same maximum batch size (no adaptation).

    This is the TensorFlow-Serving-style behaviour: batch sizes are static,
    hand-tuned offline and encoded into the deployment.
    """

    def __init__(self, batch_size: int, slo_ms: float = 1e9, max_batch_size: int = 4096) -> None:
        super().__init__(slo_ms=slo_ms, max_batch_size=max_batch_size)
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self._batch_size = min(batch_size, max_batch_size)

    def current_batch_size(self) -> int:
        return self._batch_size

    def observe(self, batch_size: int, latency_ms: float) -> None:
        # Static by design: observations are ignored.
        return None


class NoBatchingController(FixedBatchSizeController):
    """Every query is its own batch — the paper's "No Batching" baseline."""

    def __init__(self, slo_ms: float = 1e9) -> None:
        super().__init__(batch_size=1, slo_ms=slo_ms, max_batch_size=1)


def make_controller(config: BatchingConfig, slo_ms: float) -> BatchSizeController:
    """Build the controller described by a :class:`BatchingConfig`."""
    # Imported here to avoid a circular import at module load time.
    from repro.batching.aimd import AIMDController
    from repro.batching.quantile import QuantileRegressionController

    if config.policy == "aimd":
        return AIMDController(
            slo_ms=slo_ms,
            initial_batch_size=config.initial_batch_size,
            additive_increase=config.additive_increase,
            backoff_fraction=config.backoff_fraction,
            max_batch_size=config.max_batch_size,
        )
    if config.policy == "quantile":
        return QuantileRegressionController(
            slo_ms=slo_ms,
            quantile=config.quantile,
            window=config.quantile_window,
            initial_batch_size=config.initial_batch_size,
            additive_increase=config.additive_increase,
            max_batch_size=config.max_batch_size,
        )
    if config.policy == "fixed":
        return FixedBatchSizeController(
            batch_size=config.initial_batch_size,
            slo_ms=slo_ms,
            max_batch_size=config.max_batch_size,
        )
    if config.policy == "none":
        return NoBatchingController(slo_ms=slo_ms)
    raise ConfigurationError(f"unknown batching policy '{config.policy}'")
