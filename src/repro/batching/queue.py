"""Per-model batching queues.

Queries dispatched to a model are appended to that model's batching queue;
each replica's dispatcher repeatedly drains up to its controller's current
maximum batch size.  The queue supports the delayed-batching behaviour of
§4.3.2: when fewer queries than the target batch are waiting, the dispatcher
may wait up to ``batch_wait_timeout_ms`` for more to arrive before sending a
smaller batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass
class PendingQuery:
    """One query waiting in a batching queue."""

    input: Any
    future: asyncio.Future
    enqueue_time: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None
    query_id: Optional[int] = None

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the query's deadline has already passed."""
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline


class BatchingQueue:
    """FIFO of pending queries with async batch draining."""

    def __init__(self, name: str = "queue", maxsize: int = 0) -> None:
        self.name = name
        self._queue: "asyncio.Queue[PendingQuery]" = asyncio.Queue(maxsize=maxsize)
        self._closed = False

    def qsize(self) -> int:
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed

    async def put(self, item: PendingQuery) -> None:
        """Enqueue one pending query."""
        if self._closed:
            raise RuntimeError(f"batching queue '{self.name}' is closed")
        await self._queue.put(item)

    def put_nowait(self, item: PendingQuery) -> None:
        if self._closed:
            raise RuntimeError(f"batching queue '{self.name}' is closed")
        self._queue.put_nowait(item)

    async def get_batch(
        self,
        max_batch_size: int,
        batch_wait_timeout_ms: float = 0.0,
        poll_interval_ms: float = 50.0,
    ) -> List[PendingQuery]:
        """Wait for work and return a batch of at most ``max_batch_size`` queries.

        Blocks until at least one query is available (or the queue closes, in
        which case an empty list is returned).  If the queue holds fewer than
        ``max_batch_size`` queries and a positive ``batch_wait_timeout_ms`` is
        configured, the call waits up to that long for additional queries —
        the delayed-batching mechanism of §4.3.2 — before returning whatever
        has arrived.
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

        first = await self._get_first(poll_interval_ms)
        if first is None:
            return []
        batch = [first]
        self._drain_into(batch, max_batch_size)

        if len(batch) < max_batch_size and batch_wait_timeout_ms > 0:
            deadline = time.monotonic() + batch_wait_timeout_ms / 1000.0
            while len(batch) < max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                batch.append(item)
                self._drain_into(batch, max_batch_size)
        return batch

    async def _get_first(self, poll_interval_ms: float) -> Optional[PendingQuery]:
        """Block for the first query, waking periodically to notice closure."""
        while True:
            if self._closed and self._queue.empty():
                return None
            try:
                return await asyncio.wait_for(
                    self._queue.get(), timeout=poll_interval_ms / 1000.0
                )
            except asyncio.TimeoutError:
                continue

    def _drain_into(self, batch: List[PendingQuery], max_batch_size: int) -> None:
        """Move already-queued items into ``batch`` without waiting."""
        while len(batch) < max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return

    def close(self) -> None:
        """Mark the queue closed; dispatchers drain remaining items then stop."""
        self._closed = True
