"""Per-model batching queues.

Queries dispatched to a model are appended to that model's batching queue;
each replica's dispatcher repeatedly drains up to its controller's current
maximum batch size.  The queue supports the delayed-batching behaviour of
§4.3.2: when fewer queries than the target batch are waiting, the dispatcher
may wait up to ``batch_wait_timeout_ms`` for more to arrive before sending a
smaller batch.

Event-driven design
-------------------
The queue is a plain deque plus waiter futures — no poll timers.  A consumer
blocked in :meth:`BatchingQueue.get_batch` parks a future on the queue;
:meth:`put` wakes exactly one waiter per enqueued item and :meth:`close`
wakes everyone, so dispatchers react to new work and to shutdown immediately
instead of on the next 50 ms poll tick.  During delayed batching a single
``loop.call_later`` deadline timer bounds the whole wait — the previous
implementation allocated one ``asyncio.wait_for`` timer per additional item.

:meth:`get_batch` may return an empty batch when the queue is closed *or*
when the consumer was woken without work being available for it (another
consumer drained the item first, or :meth:`wake_all` was called for a prompt
dispatcher shutdown); callers treat an empty batch as "re-check state and
wait again".
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional


@dataclass(slots=True)
class PendingQuery:
    """One query waiting in a batching queue.

    ``input_hash`` carries the query's content hash, computed once by the
    serving engine, so any batch-layer consumer that needs the cache key
    (e.g. deduplicating identical in-flight queries) can read it instead of
    re-hashing the input.  The engine's own cache inserts and straggler
    callbacks reuse the same precomputed digest on the ``Clipper`` side.
    """

    input: Any
    future: asyncio.Future
    enqueue_time: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None
    query_id: Optional[int] = None
    input_hash: Optional[str] = None
    #: Number of times this query has been re-enqueued after a replica
    #: failure; the dispatcher fails the future once its retry budget is
    #: exhausted.
    attempts: int = 0
    #: The query's TraceContext when it is traced (sampled or shadow); the
    #: dispatcher stamps queue-wait/RPC/eval spans and retry flags on it.
    trace: Optional[Any] = None

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the query's deadline has already passed."""
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline


class BatchingQueue:
    """FIFO of pending queries with event-driven async batch draining."""

    def __init__(self, name: str = "queue", maxsize: int = 0) -> None:
        self.name = name
        self.maxsize = maxsize
        self._items: Deque[PendingQuery] = deque()
        self._getters: Deque[asyncio.Future] = deque()
        self._putters: Deque[asyncio.Future] = deque()
        self._empty_waiters: Deque[asyncio.Future] = deque()
        self._closed = False
        # Bumped by wake_all(); a delayed-batching wait gives up (returning
        # its partial batch) when it observes a new generation, so dispatcher
        # shutdown interrupts the wait instead of riding out the timer.
        self._wake_generation = 0

    def qsize(self) -> int:
        return len(self._items)

    def saturation(self) -> float:
        """Queue fullness in [0, 1]; always 0.0 for unbounded queues."""
        if self.maxsize <= 0:
            return 0.0
        return min(1.0, len(self._items) / self.maxsize)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- producer side ---------------------------------------------------------

    async def put(self, item: PendingQuery) -> None:
        """Enqueue one pending query, waiting for space on a bounded queue."""
        if self.maxsize > 0:
            while len(self._items) >= self.maxsize:
                # Re-checked on every wake-up: a producer parked on a full
                # queue must raise promptly when the queue closes mid-wait,
                # not only once space frees up.
                if self._closed:
                    raise RuntimeError(f"batching queue '{self.name}' is closed")
                waiter = asyncio.get_running_loop().create_future()
                self._putters.append(waiter)
                try:
                    await waiter
                except asyncio.CancelledError:
                    # If this producer absorbed a freed-slot wake-up it can no
                    # longer use, pass it on so no other producer is stranded.
                    if waiter.done() and len(self._items) < self.maxsize:
                        self._wake_next(self._putters)
                    raise
                finally:
                    self._discard_waiter(self._putters, waiter)
        self.put_nowait(item)
        if self.maxsize > 0 and len(self._items) < self.maxsize:
            self._wake_next(self._putters)

    def put_nowait(self, item: PendingQuery) -> None:
        if self._closed:
            raise RuntimeError(f"batching queue '{self.name}' is closed")
        if self.maxsize > 0 and len(self._items) >= self.maxsize:
            raise asyncio.QueueFull(f"batching queue '{self.name}' is full")
        self._items.append(item)
        self._wake_next(self._getters)

    def evict_expiring(self) -> Optional[PendingQuery]:
        """Remove and return the queued entry closest to deadline expiry.

        The ``drop-oldest`` shed policy's victim selector: prefers the item
        with the earliest deadline (the one most likely to miss anyway);
        when no queued item carries a deadline, the head of the queue (the
        oldest entry) is evicted instead.  Returns ``None`` on an empty
        queue.  The caller owns resolving the victim's future.
        """
        items = self._items
        if not items:
            return None
        best_index = -1
        best_deadline: Optional[float] = None
        for index, item in enumerate(items):
            deadline = item.deadline
            if deadline is not None and (
                best_deadline is None or deadline < best_deadline
            ):
                best_index, best_deadline = index, deadline
        if best_index < 0:
            victim = items.popleft()
        else:
            victim = items[best_index]
            del items[best_index]
        if self._putters and (self.maxsize == 0 or len(items) < self.maxsize):
            self._wake_next(self._putters)
        if not items and self._empty_waiters:
            while self._empty_waiters:
                waiter = self._empty_waiters.popleft()
                if not waiter.done():
                    waiter.set_result(None)
        return victim

    # -- consumer side ---------------------------------------------------------

    async def get_batch(
        self,
        max_batch_size: int,
        batch_wait_timeout_ms: float = 0.0,
        poll_interval_ms: Optional[float] = None,
    ) -> List[PendingQuery]:
        """Wait for work and return a batch of at most ``max_batch_size`` queries.

        Blocks until at least one query is available or the queue closes.  An
        empty list means "nothing for this consumer right now" — either the
        queue closed, or the consumer was woken spuriously (see module
        docstring) — and the caller should re-check state before retrying.

        If the queue holds fewer than ``max_batch_size`` queries and a
        positive ``batch_wait_timeout_ms`` is configured, the call waits up
        to that long for additional queries — the delayed-batching mechanism
        of §4.3.2 — before returning whatever has arrived.  A single deadline
        timer covers the whole delayed wait.

        ``poll_interval_ms`` is accepted for backwards compatibility and
        ignored: the queue is event-driven and no longer polls.
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

        if not self._items:
            if self._closed:
                return []
            waiter = asyncio.get_running_loop().create_future()
            self._getters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                # If this consumer absorbed a wake-up it can no longer use,
                # pass it on so the item is not stranded.
                if waiter.done() and self._items:
                    self._wake_next(self._getters)
                raise
            finally:
                self._discard_waiter(self._getters, waiter)

        batch: List[PendingQuery] = []
        self._drain_into(batch, max_batch_size)
        if not batch:
            return batch
        if len(batch) < max_batch_size and batch_wait_timeout_ms > 0 and not self._closed:
            await self._fill_delayed(batch, max_batch_size, batch_wait_timeout_ms)
        return batch

    async def _fill_delayed(
        self, batch: List[PendingQuery], max_batch_size: int, batch_wait_timeout_ms: float
    ) -> None:
        """Top up ``batch`` until full, the deadline passes, or the queue closes."""
        loop = asyncio.get_running_loop()
        expired = False
        waiter: Optional[asyncio.Future] = None

        def _on_deadline() -> None:
            nonlocal expired
            expired = True
            if waiter is not None and not waiter.done():
                waiter.set_result(None)

        generation = self._wake_generation
        timer = loop.call_later(batch_wait_timeout_ms / 1000.0, _on_deadline)
        try:
            while (
                len(batch) < max_batch_size
                and not expired
                and not self._closed
                and self._wake_generation == generation
            ):
                waiter = loop.create_future()
                self._getters.append(waiter)
                try:
                    await waiter
                except asyncio.CancelledError:
                    # If this consumer absorbed a wake-up it can no longer
                    # use, pass it on so the item is not stranded.
                    if waiter.done() and self._items:
                        self._wake_next(self._getters)
                    raise
                finally:
                    self._discard_waiter(self._getters, waiter)
                    waiter = None
                self._drain_into(batch, max_batch_size)
        finally:
            timer.cancel()

    def _drain_into(self, batch: List[PendingQuery], max_batch_size: int) -> None:
        """Move already-queued items into ``batch`` without waiting."""
        items = self._items
        while len(batch) < max_batch_size and items:
            batch.append(items.popleft())
        if self._putters and (self.maxsize == 0 or len(items) < self.maxsize):
            self._wake_next(self._putters)
        if not items and self._empty_waiters:
            while self._empty_waiters:
                waiter = self._empty_waiters.popleft()
                if not waiter.done():
                    waiter.set_result(None)

    async def wait_empty(self, timeout_s: Optional[float] = None) -> bool:
        """Wait (event-driven) until consumers have drained every item.

        Returns True once the queue is empty, or False on timeout.  Used by
        the management plane to let a model's own dispatchers finish the
        queued work before teardown — "empty" means handed to a dispatcher,
        not yet necessarily resolved, so callers still stop the dispatchers
        (which await their in-flight batch) afterwards.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while self._items:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            waiter = asyncio.get_running_loop().create_future()
            self._empty_waiters.append(waiter)
            try:
                if remaining is None:
                    await waiter
                else:
                    await asyncio.wait_for(waiter, timeout=remaining)
            except asyncio.TimeoutError:
                return False
            finally:
                self._discard_waiter(self._empty_waiters, waiter)
        return True

    # -- wake-up plumbing ------------------------------------------------------

    @staticmethod
    def _wake_next(waiters: Deque[asyncio.Future]) -> None:
        while waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    @staticmethod
    def _discard_waiter(waiters: Deque[asyncio.Future], waiter: asyncio.Future) -> None:
        try:
            waiters.remove(waiter)
        except ValueError:
            pass

    def wake_all(self) -> None:
        """Wake every blocked consumer (used for prompt dispatcher shutdown).

        Consumers parked waiting for a first item return an empty batch;
        consumers in a delayed-batching wait return their partial batch
        immediately instead of riding out the deadline timer.
        """
        self._wake_generation += 1
        while self._getters:
            waiter = self._getters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    def close(self) -> None:
        """Mark the queue closed; dispatchers drain remaining items then stop.

        Wakes every blocked producer and consumer immediately — consumers see
        an empty batch (or the remaining items) and exit, producers raise.
        """
        self._closed = True
        self.wake_all()
        while self._putters:
            waiter = self._putters.popleft()
            if not waiter.done():
                waiter.set_result(None)
