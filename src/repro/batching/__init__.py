"""Adaptive batching (paper §4.3): controllers, queues and dispatchers."""

from repro.batching.controllers import (
    BatchSizeController,
    FixedBatchSizeController,
    NoBatchingController,
    make_controller,
)
from repro.batching.aimd import AIMDController
from repro.batching.quantile import QuantileRegressionController, fit_quantile_line
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.batching.dispatcher import ReplicaDispatcher

__all__ = [
    "BatchSizeController",
    "FixedBatchSizeController",
    "NoBatchingController",
    "AIMDController",
    "QuantileRegressionController",
    "fit_quantile_line",
    "make_controller",
    "BatchingQueue",
    "PendingQuery",
    "ReplicaDispatcher",
]
