"""The AIMD batch-size controller (paper §4.3.1, Clipper's default).

Additive-increase / multiplicative-decrease: while batches complete under
the latency objective, the maximum batch size grows by a fixed additive
step; when a batch exceeds the objective, the size is cut by a small
multiplicative backoff (10% in the paper — much gentler than TCP's halving
because the optimal batch size of a model container barely fluctuates).
"""

from __future__ import annotations

from repro.batching.controllers import BatchSizeController
from repro.core.exceptions import ConfigurationError


class AIMDController(BatchSizeController):
    """Additive-increase, multiplicative-decrease batch-size control.

    Parameters
    ----------
    slo_ms:
        The latency objective a single batch evaluation must satisfy.
    initial_batch_size:
        Starting maximum batch size.
    additive_increase:
        Step added after every under-SLO batch.
    backoff_fraction:
        Multiplier applied when a batch exceeds the SLO (paper: 0.9).
    max_batch_size:
        Hard cap regardless of observed latency.
    """

    def __init__(
        self,
        slo_ms: float,
        initial_batch_size: int = 1,
        additive_increase: int = 1,
        backoff_fraction: float = 0.9,
        max_batch_size: int = 4096,
    ) -> None:
        super().__init__(slo_ms=slo_ms, max_batch_size=max_batch_size)
        if initial_batch_size < 1:
            raise ConfigurationError("initial_batch_size must be >= 1")
        if additive_increase < 1:
            raise ConfigurationError("additive_increase must be >= 1")
        if not 0.0 < backoff_fraction < 1.0:
            raise ConfigurationError("backoff_fraction must be in (0, 1)")
        self.additive_increase = additive_increase
        self.backoff_fraction = backoff_fraction
        self._batch_size = float(self._clamp(initial_batch_size))
        self.increases = 0
        self.backoffs = 0

    def current_batch_size(self) -> int:
        return self._clamp(self._batch_size)

    def observe(self, batch_size: int, latency_ms: float) -> None:
        """Additively grow under the SLO, multiplicatively back off above it.

        Growth is only applied when the dispatched batch actually used the
        full allowance: a small batch finishing quickly says nothing about
        whether a larger batch would still meet the SLO.
        """
        if latency_ms > self.slo_ms:
            self._batch_size = max(1.0, self._batch_size * self.backoff_fraction)
            self.backoffs += 1
        elif batch_size >= self.current_batch_size():
            self._batch_size = min(
                float(self.hard_max_batch_size),
                self._batch_size + self.additive_increase,
            )
            self.increases += 1
