"""Operator-facing management frontend.

The paper's architecture has two frontends: the query frontend applications
call for predictions, and a management frontend operators call to mutate the
serving configuration — deploy models and versions, scale replicas, roll
out and roll back — with the state persisted in Redis.  The
:class:`ManagementFrontend` is that second interface for the reproduction,
mirroring :class:`~repro.core.frontend.QueryFrontend`: it hosts the same
applications (each a :class:`~repro.core.clipper.Clipper`), validates and
routes management operations by application name, records every operation in
the :class:`~repro.management.registry.ModelRegistry`, and runs one
:class:`~repro.management.health.HealthMonitor` per application.

It is the single public surface for examples and tests::

    mgmt = ManagementFrontend()
    mgmt.register_application(clipper)
    await mgmt.start()                       # serving + health + canary control up
    await mgmt.deploy_model("app", ModelDeployment("svm", factory, version=2))
    await mgmt.start_canary("app", "svm", 2, weight=0.1)   # 10% of keys on v2
    await mgmt.adjust_canary("app", "svm", weight=0.5)     # ramp to 50%
    await mgmt.promote("app", "svm")         # ... or let the controller decide
    await mgmt.set_num_replicas("app", "svm", 3)
    await mgmt.rollback("app", "svm")        # v1 takes traffic back
    await mgmt.stop()

Each application also gets a
:class:`~repro.routing.controller.CanaryController` (unless disabled) whose
promote/abort actions route back through this frontend, so metrics-driven
decisions update the durable registry exactly like operator-issued ones.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.clipper import Clipper
from repro.core.config import ModelDeployment
from repro.core.exceptions import ManagementError
from repro.core.frontend import (
    ApplicationHost,
    start_applications,
    stop_applications,
)
from repro.core.types import ModelId
from repro.management.health import HealthMonitor
from repro.management.records import VERSION_UNDEPLOYED, ReplicaHealth
from repro.management.recovery import (
    DEPLOY_SPEC_KEY,
    RecoveryReport,
    deploy_spec,
    deployment_from_record,
)
from repro.management.registry import ModelRegistry
from repro.observability.logging import get_logger
from repro.routing.controller import CanaryController
from repro.routing.split import TrafficSplit
from repro.state.kvstore import KeyValueStore

logger = get_logger("management.frontend")


class ManagementFrontend(ApplicationHost):
    """Routes lifecycle operations to applications and records them durably."""

    def __init__(
        self,
        store: Optional[KeyValueStore] = None,
        registry: Optional[ModelRegistry] = None,
        monitor_health: bool = True,
        health_kwargs: Optional[Dict[str, Any]] = None,
        manage_canaries: bool = True,
        canary_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__()
        self.registry = registry or ModelRegistry(store=store)
        self._monitors: Dict[str, HealthMonitor] = {}
        self._controllers: Dict[str, CanaryController] = {}
        self._monitor_health = monitor_health
        self._health_kwargs = dict(health_kwargs or {})
        self._manage_canaries = manage_canaries
        self._canary_kwargs = dict(canary_kwargs or {})
        self._recoveries: Dict[str, RecoveryReport] = {}
        self._started = False

    # -- registration ----------------------------------------------------------

    def register_application(self, clipper: Clipper) -> str:
        """Register an application for management; the name comes from its config.

        Any models already deployed on the instance are back-filled into the
        registry so the durable record matches the running configuration.
        When registering onto an already-started frontend, call
        :meth:`start` again afterwards — it is idempotent for running
        applications and brings up the new application and its health
        monitor.
        """
        app_name = self._host_application(clipper)
        try:
            self.registry.register_application(
                app_name, metadata=self._schemas[app_name].to_dict()
            )
        except ManagementError:
            # The durable record refused the application (e.g. a previous
            # frontend on the same store already registered the name): undo
            # the in-memory hosting so the two never disagree.
            self._unhost_application(app_name)
            raise
        self._attach(app_name, clipper)
        for record in clipper.model_records():
            model_id = record.model_id
            self.registry.register_model_version(
                app_name,
                model_id.name,
                model_id.version,
                num_replicas=len(record.replica_set),
                serving=clipper.active_version(model_id.name) == model_id,
                batching_policy=record.deployment.batching.policy,
                metadata={DEPLOY_SPEC_KEY: deploy_spec(record.deployment)},
            )
        return app_name

    def _attach(self, app_name: str, clipper: Clipper) -> None:
        """Attach the health monitor and canary controller of one application."""
        if self._monitor_health:
            self._monitors[app_name] = HealthMonitor(clipper, **self._health_kwargs)
        if self._manage_canaries:
            # The controller's actions route back through this frontend so
            # auto-promote/auto-abort update the registry like operator ops.
            self._controllers[app_name] = CanaryController(
                clipper,
                health_monitor=self._monitors.get(app_name),
                promote=partial(self.promote, app_name),
                abort=partial(self.abort_canary, app_name),
                **self._canary_kwargs,
            )

    async def restore_application(
        self,
        clipper: Clipper,
        factories: Optional[Mapping[str, Callable[[], object]]] = None,
    ) -> RecoveryReport:
        """Rebuild one application's serving state from its registry records.

        The cold-start half of durability: the caller reopens the durable
        store (whose registry records survived the crash), constructs a
        fresh :class:`Clipper` with the application's configuration, and
        this method rebuilds everything the dead process was serving —
        every non-undeployed model version (via the named container
        ``factories``, replica counts included), the routing table's
        stable arms and rollback pointers, and any canary split that was
        in flight (which the canary controller then resumes ramping).

        The application must already be in the registry; it is hosted
        in-memory *without* re-registering.  Versions whose factory is
        missing are reported in the returned :class:`RecoveryReport`
        (also surfaced via :meth:`recovery_status` and the health API)
        rather than failing the whole restore.
        """
        app_name = clipper.config.app_name
        self.registry.application(app_name)  # must exist durably
        if clipper.model_records():
            raise ManagementError(
                f"restore_application needs a fresh instance; '{app_name}' "
                "already has models deployed"
            )
        report = RecoveryReport(app_name=app_name)
        store_recovery = getattr(self.registry.store, "recovery", None)
        if store_recovery is not None:
            report.store = store_recovery.to_dict()
        self._host_application(clipper)
        try:
            factories = dict(factories or {})
            for model_name, model in sorted(self.registry.models(app_name).items()):
                versions = sorted(
                    model["versions"].values(), key=lambda rec: int(rec["version"])
                )
                for rec in versions:
                    if rec["state"] == VERSION_UNDEPLOYED:
                        continue
                    try:
                        deployment = deployment_from_record(
                            model_name, rec, factories
                        )
                    except ManagementError as exc:
                        report.skipped.append(
                            {
                                "model": model_name,
                                "version": int(rec["version"]),
                                "reason": str(exc),
                            }
                        )
                        continue
                    # Every version comes up staged; the recorded routing is
                    # swapped in wholesale below.
                    await clipper.deploy_model_async(deployment, activate=False)
                    report.versions_restored += 1
                self._restore_routes(clipper, model_name, model, report)
        except BaseException:
            self._unhost_application(app_name)
            raise
        self._attach(app_name, clipper)
        self._recoveries[app_name] = report
        return report

    def _restore_routes(
        self,
        clipper: Clipper,
        model_name: str,
        model: Dict[str, Any],
        report: RecoveryReport,
    ) -> None:
        """Reinstall one model's recorded routing (split + rollback pointer)."""
        split_record = model.get("traffic_split")
        active = model.get("active_version")
        if split_record is not None:
            split = TrafficSplit.from_record(split_record)
        elif active is not None:
            split = TrafficSplit.single(
                str(ModelId(model_name, active)), seed=clipper.config.routing_seed
            )
        else:
            return  # never served (or fully undeployed): nothing to route
        deployed = {str(model_id) for model_id in clipper.model_versions(model_name)}
        missing = [key for key in split.keys() if key not in deployed]
        if missing:
            report.skipped.append(
                {
                    "model": model_name,
                    "reason": f"recorded routing references unrestored versions {missing}",
                }
            )
            return
        previous = model.get("previous_version")
        previous_key = (
            str(ModelId(model_name, previous)) if previous is not None else None
        )
        if previous_key is not None and previous_key not in deployed:
            previous_key = None  # rollback target did not come back; drop it
        clipper.restore_routing(model_name, split, previous_key)
        report.routes_restored += 1
        if split.canary is not None:
            report.canaries_resumed += 1

    def recovery_status(self) -> Dict[str, Dict[str, Any]]:
        """Per-application recovery reports (empty for cold-started frontends)."""
        return {name: report.to_dict() for name, report in self._recoveries.items()}

    # ``applications()`` / ``application()`` / ``schema()`` / ``_lookup`` are
    # inherited from :class:`ApplicationHost` — the same registry and error
    # path the query frontend uses.

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Start every managed application and its health monitor.

        Shares the query frontend's all-or-nothing start: a failure stops
        the applications already brought up before propagating.  Idempotent
        for already-running applications and monitors, so it can be called
        again after :meth:`register_application` on a live frontend.
        """
        await start_applications(self._applications)
        try:
            for monitor in self._monitors.values():
                await monitor.start()
            for controller in self._controllers.values():
                await controller.start()
        except BaseException:
            # Applications came up but a monitor did not: unwind both so a
            # failed start leaves nothing running.
            for controller in self._controllers.values():
                await controller.stop()
            for monitor in self._monitors.values():
                await monitor.stop()
            try:
                await stop_applications(self._applications)
            except Exception:
                pass  # surface the original monitor-start failure
            raise
        self._started = True

    async def stop(self) -> None:
        """Stop canary controllers, health monitors and applications."""
        for controller in self._controllers.values():
            await controller.stop()
        for monitor in self._monitors.values():
            await monitor.stop()
        self._started = False
        await stop_applications(self._applications)

    # -- model lifecycle operations -------------------------------------------

    async def deploy_model(
        self,
        app_name: str,
        deployment: ModelDeployment,
        activate: Optional[bool] = None,
    ) -> ModelId:
        """Deploy one model version onto a (possibly running) application.

        On a started application the version's replicas are up when this
        returns.  The first version of a name serves immediately; later
        versions stage for :meth:`rollout` unless ``activate=True``.
        """
        clipper = self._lookup(app_name)
        model_id = await clipper.deploy_model_async(deployment, activate=activate)
        try:
            self.registry.register_model_version(
                app_name,
                model_id.name,
                model_id.version,
                num_replicas=deployment.num_replicas,
                serving=clipper.active_version(model_id.name) == model_id,
                batching_policy=deployment.batching.policy,
                metadata={DEPLOY_SPEC_KEY: deploy_spec(deployment)},
            )
        except ManagementError:
            # The registry refused the record (e.g. the version number was
            # used and undeployed before — versions are immutable).  Undo
            # the live deploy so the running configuration and the durable
            # record never disagree.
            try:
                await clipper.undeploy_model(str(model_id))
            except Exception:
                pass  # surface the registry rejection, not the unwind
            raise
        logger.info(
            "deployed %s",
            model_id,
            extra={
                "app": app_name,
                "model": model_id.name,
                "version": model_id.version,
                "num_replicas": deployment.num_replicas,
                "serving": clipper.active_version(model_id.name) == model_id,
            },
        )
        return model_id

    async def undeploy_model(self, app_name: str, model: str) -> ModelId:
        """Drain and tear down one model version; its registry record is kept."""
        clipper = self._lookup(app_name)
        model_id = clipper.model_record(model).model_id
        # Precheck the registry record: the teardown is irreversible, so a
        # version deployed behind the frontend's back must be rejected
        # before the live machinery is drained, not after.
        self._require_registered(app_name, model_id)
        await clipper.undeploy_model(str(model_id))
        self.registry.mark_undeployed(app_name, model_id.name, model_id.version)
        logger.info(
            "undeployed %s",
            model_id,
            extra={"app": app_name, "model": model_id.name, "version": model_id.version},
        )
        return model_id

    async def set_num_replicas(self, app_name: str, model: str, num_replicas: int) -> int:
        """Scale one model version's live replica set; returns the new size."""
        clipper = self._lookup(app_name)
        model_id = clipper.model_record(model).model_id
        self._require_registered(app_name, model_id)
        count = await clipper.set_num_replicas(model, num_replicas)
        self.registry.set_num_replicas(app_name, model_id.name, model_id.version, count)
        return count

    def _require_registered(self, app_name: str, model_id: ModelId) -> None:
        info = self.registry.model(app_name, model_id.name)
        if str(model_id.version) not in info["versions"]:
            raise ManagementError(
                f"version {model_id.version} of model '{model_id.name}' is not "
                "in the registry; deploy it through the management frontend"
            )

    async def rollout(self, app_name: str, model_name: str, version: int) -> ModelId:
        """Atomically switch ``model_name`` to serve ``version``."""
        clipper = self._lookup(app_name)
        model_id = self._switch_version(
            clipper, app_name, model_name, lambda: clipper.rollout(model_name, version)
        )
        logger.info(
            "rolled out %s",
            model_id,
            extra={"app": app_name, "model": model_name, "version": model_id.version},
        )
        return model_id

    async def rollback(self, app_name: str, model_name: str) -> ModelId:
        """Atomically switch ``model_name`` back to its previous version."""
        clipper = self._lookup(app_name)
        model_id = self._switch_version(
            clipper, app_name, model_name, lambda: clipper.rollback(model_name)
        )
        logger.warning(
            "rolled back %s to %s",
            model_name,
            model_id,
            extra={"app": app_name, "model": model_name, "version": model_id.version},
        )
        return model_id

    # -- canary rollouts -------------------------------------------------------

    async def start_canary(
        self, app_name: str, model_name: str, version: int, weight: float
    ) -> TrafficSplit:
        """Begin a weighted canary rollout and record the split durably.

        ``weight`` of the model's traffic (by deterministic routing-key
        hash) shifts onto ``version``; the application's canary controller
        (when enabled) will auto-promote or auto-abort it from the per-arm
        metrics and the health monitor's quarantine signal.
        """
        clipper = self._lookup(app_name)
        self._require_registered(app_name, ModelId(model_name, version))
        split = clipper.start_canary(model_name, version, weight)
        try:
            self.registry.set_traffic_split(app_name, model_name, split.to_record())
        except ManagementError:
            # The registry refused the record: snap traffic back so the
            # running configuration and the durable record never disagree.
            try:
                clipper.abort_canary(model_name)
            except Exception:
                pass  # surface the registry rejection, not the unwind
            raise
        logger.info(
            "canary started for %s",
            model_name,
            extra={
                "app": app_name,
                "model": model_name,
                "version": version,
                "weight": weight,
            },
        )
        return split

    async def adjust_canary(
        self, app_name: str, model_name: str, weight: float
    ) -> TrafficSplit:
        """Change an in-flight canary's traffic weight and re-record it."""
        clipper = self._lookup(app_name)
        before = clipper.routing.split_for(model_name)
        split = clipper.adjust_canary(model_name, weight)
        try:
            self.registry.set_traffic_split(app_name, model_name, split.to_record())
        except ManagementError:
            if before is not None and before.canary is not None:
                try:
                    clipper.adjust_canary(model_name, before.canary_weight)
                except Exception:
                    pass  # surface the registry rejection, not the unwind
            raise
        return split

    async def promote(self, app_name: str, model_name: str) -> ModelId:
        """Make the in-flight canary the serving version; clear the split record."""
        clipper = self._lookup(app_name)
        before_split = clipper.routing.split_for(model_name)
        before_previous = clipper.routing.previous_key(model_name)
        model_id = clipper.promote(model_name)
        try:
            self.registry.clear_traffic_split(
                app_name, model_name, promote_to=model_id.version
            )
        except ManagementError:
            # Reinstall the exact pre-promote configuration (in-flight split
            # and rollback pointer) so traffic matches the durable record.
            try:
                clipper.routing.restore(model_name, before_split, before_previous)
            except Exception:
                pass  # surface the registry rejection, not the unwind
            raise
        logger.info(
            "canary promoted for %s",
            model_name,
            extra={"app": app_name, "model": model_name, "version": model_id.version},
        )
        return model_id

    async def abort_canary(self, app_name: str, model_name: str) -> ModelId:
        """Abort the in-flight canary; traffic returns to the stable version."""
        clipper = self._lookup(app_name)
        before_split = clipper.routing.split_for(model_name)
        before_previous = clipper.routing.previous_key(model_name)
        model_id = clipper.abort_canary(model_name)
        try:
            self.registry.clear_traffic_split(app_name, model_name)
        except ManagementError:
            # The registry still records the split as in flight; reinstall it
            # (the canary's mixed selection state restarts fresh).
            try:
                clipper.routing.restore(model_name, before_split, before_previous)
            except Exception:
                pass  # surface the registry rejection, not the unwind
            raise
        logger.warning(
            "canary aborted for %s",
            model_name,
            extra={"app": app_name, "model": model_name, "version": model_id.version},
        )
        return model_id

    def traffic_split(
        self, app_name: str, model_name: str
    ) -> Optional[Dict[str, Any]]:
        """The durably recorded in-flight split of one model (None when stable)."""
        self._lookup(app_name)
        return self.registry.traffic_split(app_name, model_name)

    def canary_controller(self, app_name: str) -> Optional[CanaryController]:
        """The application's canary controller (None when management is off)."""
        self._lookup(app_name)
        return self._controllers.get(app_name)

    def _switch_version(self, clipper, app_name, model_name, switch) -> ModelId:
        """Apply a live version switch and record it, unwinding on refusal."""
        before = clipper.active_version(model_name)
        model_id = switch()
        try:
            self.registry.set_active_version(app_name, model_name, model_id.version)
        except ManagementError:
            # The registry refused (e.g. the version was deployed directly
            # on the clipper, bypassing the frontend): restore the previous
            # serving version so traffic matches the durable record.
            if before is not None and before != model_id:
                try:
                    clipper.rollout(model_name, before.version)
                except Exception:
                    pass  # surface the registry rejection, not the unwind
            raise
        return model_id

    # -- introspection ---------------------------------------------------------

    def models(self, app_name: str) -> Dict[str, Dict[str, Any]]:
        """Registry records of every model of one application."""
        self._lookup(app_name)
        return self.registry.models(app_name)

    def model_info(self, app_name: str, model_name: str) -> Dict[str, Any]:
        """Registry record of one model (versions, active/previous).

        Augmented with the hosting application's declared serving contract
        (``app_schema``: input type/shape, default output, SLO) so the admin
        API reports what the model is expected to consume and produce.
        """
        self._lookup(app_name)
        info = self.registry.model(app_name, model_name)
        info["app_schema"] = self._schemas[app_name].to_dict()
        return info

    def health_monitor(self, app_name: str) -> Optional[HealthMonitor]:
        """The application's health monitor (None when monitoring is off)."""
        self._lookup(app_name)
        return self._monitors.get(app_name)

    def replica_health(self, app_name: str) -> Dict[str, ReplicaHealth]:
        """Per-replica health records of one application."""
        monitor = self.health_monitor(app_name)
        return monitor.status() if monitor is not None else {}

    def describe(self, app_name: str) -> Dict[str, Any]:
        """One-call operational snapshot of an application."""
        clipper = self._lookup(app_name)
        monitor = self._monitors.get(app_name)
        return {
            "app_name": app_name,
            "schema": self._schemas[app_name].to_dict(),
            "started": clipper.is_started,
            "serving": [str(m) for m in clipper.serving_models()],
            "deployed": [str(m) for m in clipper.deployed_models()],
            "routing": clipper.routing.describe(),
            "replicas": {
                str(record.model_id): len(record.replica_set)
                for record in clipper.model_records()
            },
            "health": {
                name: status.state
                for name, status in self.replica_health(app_name).items()
            },
            "unhealthy_models": monitor.unhealthy_model_keys() if monitor else [],
            "overload": clipper.overload_state(),
            "recovery": (
                self._recoveries[app_name].to_dict()
                if app_name in self._recoveries
                else None
            ),
        }
