"""The management plane: live deployment, versioned rollout, scaling, recovery.

This package is the reproduction of the paper's *management frontend* — the
half of Clipper's architecture that mutates a running serving deployment:

* :class:`~repro.management.registry.ModelRegistry` — durable, versioned
  record of applications, models and immutable model versions, persisted in
  the key-value state store under optimistic concurrency.
* :class:`~repro.management.health.HealthMonitor` — probes replicas,
  quarantines unhealthy ones out of dispatch, and restarts them with
  backoff.
* :class:`~repro.management.frontend.ManagementFrontend` — the operator
  surface mirroring the query frontend: deploy/undeploy, replica scaling,
  rollout/rollback, weighted canary rollouts (start/adjust/promote/abort,
  recorded as traffic-split records in the registry), health and registry
  introspection per application.
* :class:`~repro.routing.controller.CanaryController` (re-exported from the
  routing layer) — one per managed application: watches per-arm
  error-rate/p99 deltas and the health monitor's quarantine signal to
  auto-promote or auto-abort in-flight canaries through the frontend's
  registry-recording verbs.
"""

from repro.management.frontend import ManagementFrontend
from repro.management.health import HealthMonitor
from repro.management.records import (
    REPLICA_HEALTHY,
    REPLICA_QUARANTINED,
    REPLICA_RECOVERING,
    VERSION_CANARY,
    VERSION_RETIRED,
    VERSION_SERVING,
    VERSION_STAGED,
    VERSION_UNDEPLOYED,
    ReplicaHealth,
)
from repro.management.registry import ModelRegistry
from repro.routing.controller import CanaryController

__all__ = [
    "ManagementFrontend",
    "HealthMonitor",
    "ModelRegistry",
    "CanaryController",
    "ReplicaHealth",
    "REPLICA_HEALTHY",
    "REPLICA_QUARANTINED",
    "REPLICA_RECOVERING",
    "VERSION_SERVING",
    "VERSION_STAGED",
    "VERSION_CANARY",
    "VERSION_RETIRED",
    "VERSION_UNDEPLOYED",
]
