"""The management plane: live deployment, versioned rollout, scaling, recovery.

This package is the reproduction of the paper's *management frontend* — the
half of Clipper's architecture that mutates a running serving deployment:

* :class:`~repro.management.registry.ModelRegistry` — durable, versioned
  record of applications, models and immutable model versions, persisted in
  the key-value state store under optimistic concurrency.
* :class:`~repro.management.health.HealthMonitor` — probes replicas,
  quarantines unhealthy ones out of dispatch, and restarts them with
  backoff.
* :class:`~repro.management.frontend.ManagementFrontend` — the operator
  surface mirroring the query frontend: deploy/undeploy, replica scaling,
  rollout/rollback, health and registry introspection per application.
"""

from repro.management.frontend import ManagementFrontend
from repro.management.health import HealthMonitor
from repro.management.records import (
    REPLICA_HEALTHY,
    REPLICA_QUARANTINED,
    REPLICA_RECOVERING,
    VERSION_RETIRED,
    VERSION_SERVING,
    VERSION_STAGED,
    VERSION_UNDEPLOYED,
    ReplicaHealth,
)
from repro.management.registry import ModelRegistry

__all__ = [
    "ManagementFrontend",
    "HealthMonitor",
    "ModelRegistry",
    "ReplicaHealth",
    "REPLICA_HEALTHY",
    "REPLICA_QUARANTINED",
    "REPLICA_RECOVERING",
    "VERSION_SERVING",
    "VERSION_STAGED",
    "VERSION_RETIRED",
    "VERSION_UNDEPLOYED",
]
