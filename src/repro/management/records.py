"""Shared vocabulary of the management plane.

The registry persists plain dicts (JSON-friendly, like the selection-policy
states) in the :class:`~repro.state.kvstore.KeyValueStore`; this module
defines the lifecycle states those records move through, the helper that
builds an immutable version record, and the in-memory
:class:`ReplicaHealth` record the health monitor maintains per replica.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Lifecycle states of one deployed model version.
VERSION_SERVING = "serving"      # the active version: receives traffic
VERSION_STAGED = "staged"        # deployed and warm, awaiting rollout
VERSION_CANARY = "canary"        # serving a weighted slice during a rollout
VERSION_RETIRED = "retired"      # previously serving; kept warm for rollback
VERSION_UNDEPLOYED = "undeployed"  # machinery torn down; record kept for history

#: Health states of one container replica.
REPLICA_HEALTHY = "healthy"
REPLICA_QUARANTINED = "quarantined"  # out of dispatch, awaiting restart
REPLICA_RECOVERING = "recovering"    # restart in progress


def version_record(
    version: int,
    num_replicas: int,
    state: str,
    batching_policy: str = "aimd",
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the stored record of one model version.

    The deploy metadata (version number, deploy time, batching policy,
    caller-supplied metadata) is immutable once registered; only the
    lifecycle ``state`` and the current ``num_replicas`` are updated in
    place by management operations.
    """
    return {
        "version": int(version),
        "deployed_at": time.time(),
        "num_replicas": int(num_replicas),
        "state": state,
        "batching_policy": batching_policy,
        "metadata": dict(metadata or {}),
    }


@dataclass
class ReplicaHealth:
    """Running health record of one container replica.

    Maintained by the :class:`~repro.management.health.HealthMonitor`;
    ``state`` is one of ``REPLICA_HEALTHY``/``REPLICA_QUARANTINED``/
    ``REPLICA_RECOVERING``.
    """

    replica_name: str
    model_key: str
    replica_id: int
    state: str = REPLICA_HEALTHY
    consecutive_failures: int = 0
    probes: int = 0
    failures: int = 0
    quarantines: int = 0
    restarts: int = 0
    last_probe_latency_ms: Optional[float] = None
    since: float = field(default_factory=time.monotonic)

    def mark(self, state: str) -> None:
        """Transition to ``state`` and restamp the transition time."""
        if state != self.state:
            self.state = state
            self.since = time.monotonic()
