"""Versioned model registry persisted in the key-value state store.

The paper's management frontend keeps the serving configuration —
applications, models, versions, replica counts — in Redis, separate from the
serving path, so operators can mutate it without restarting the query
frontend.  :class:`ModelRegistry` plays that role here on top of
:class:`~repro.state.kvstore.KeyValueStore`.

Every mutation goes through an optimistic-concurrency loop built on
``put_if_version``: read the record with its version, apply the update to a
copy, and compare-and-swap it back, retrying on interleaved writers.  That
makes concurrent management operations (two operators, or the management
frontend racing the health monitor) safe without a coarse lock around the
store — the same versioned-replicated-state discipline CRDT systems lean on.

Stored layout (namespace ``management``)::

    applications            -> {app_name: {"registered_at", "metadata"}}
    models:<app>            -> {model_name: {"active_version": int|None,
                                             "previous_version": int|None,
                                             "traffic_split": split_record|absent,
                                             "versions": {str(v): version_record}}}

The ``traffic_split`` record (a
:meth:`repro.routing.split.TrafficSplit.to_record` dict) is present exactly
while a canary rollout is in flight, so the durable record always names the
complete routing configuration — the same atomic, inspectable-transition
discipline the routing table applies in memory.

Version records are immutable deploy metadata (registering the same
``(name, version)`` twice is an error); only the lifecycle ``state`` and
``num_replicas`` fields move.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import ManagementError
from repro.management.records import (
    VERSION_CANARY,
    VERSION_RETIRED,
    VERSION_SERVING,
    VERSION_STAGED,
    VERSION_UNDEPLOYED,
    version_record,
)
from repro.state.kvstore import KeyValueStore

#: Store namespace holding every registry record.
NAMESPACE = "management"
#: Key of the application index.
APPLICATIONS_KEY = "applications"


def _models_key(app_name: str) -> str:
    return f"models:{app_name}"


class ModelRegistry:
    """Durable record of applications, models and immutable model versions."""

    def __init__(
        self,
        store: Optional[KeyValueStore] = None,
        namespace: str = NAMESPACE,
        max_cas_retries: int = 32,
    ) -> None:
        self.store = store or KeyValueStore()
        self.namespace = namespace
        self.max_cas_retries = max_cas_retries

    # -- optimistic-concurrency plumbing --------------------------------------

    def _update(self, key: str, fn: Callable[[Dict], Dict]) -> Dict:
        """Apply ``fn`` to the record at ``key`` under compare-and-swap.

        ``fn`` receives a private copy of the current record (an empty dict
        when absent) and returns the record to store.  Retries when another
        writer won the race; raises :class:`ManagementError` if the race is
        lost ``max_cas_retries`` times in a row.
        """
        for _ in range(self.max_cas_retries):
            value, version = self.store.get_with_version(self.namespace, key)
            current = copy.deepcopy(value) if value is not None else {}
            updated = fn(current)
            if self.store.put_if_version(self.namespace, key, updated, version):
                return updated
        raise ManagementError(
            f"lost the optimistic-concurrency race on '{key}' "
            f"{self.max_cas_retries} times; giving up"
        )

    # -- applications ----------------------------------------------------------

    def register_application(
        self, app_name: str, metadata: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Record a new application; duplicate names are rejected."""

        def update(apps: Dict) -> Dict:
            if app_name in apps:
                raise ManagementError(f"application '{app_name}' is already registered")
            apps[app_name] = {
                "registered_at": time.time(),
                "metadata": dict(metadata or {}),
            }
            return apps

        return self._update(APPLICATIONS_KEY, update)[app_name]

    def applications(self) -> List[str]:
        """Names of every registered application."""
        return sorted(self.store.get(self.namespace, APPLICATIONS_KEY, {}))

    def application(self, app_name: str) -> Dict[str, Any]:
        """The stored record of one application."""
        apps = self.store.get(self.namespace, APPLICATIONS_KEY, {})
        if app_name not in apps:
            raise ManagementError(f"application '{app_name}' is not registered")
        return copy.deepcopy(apps[app_name])

    def _require_app(self, app_name: str) -> None:
        if app_name not in self.store.get(self.namespace, APPLICATIONS_KEY, {}):
            raise ManagementError(f"application '{app_name}' is not registered")

    # -- model versions --------------------------------------------------------

    def register_model_version(
        self,
        app_name: str,
        model_name: str,
        version: int,
        num_replicas: int = 1,
        serving: bool = False,
        batching_policy: str = "aimd",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record one immutable model version, optionally as the serving one."""
        self._require_app(app_name)

        def update(models: Dict) -> Dict:
            model = models.setdefault(
                model_name,
                {"active_version": None, "previous_version": None, "versions": {}},
            )
            vkey = str(version)
            if vkey in model["versions"]:
                raise ManagementError(
                    f"version {version} of model '{model_name}' is already "
                    "registered; versions are immutable"
                )
            model["versions"][vkey] = version_record(
                version,
                num_replicas,
                VERSION_SERVING if serving else VERSION_STAGED,
                batching_policy=batching_policy,
                metadata=metadata,
            )
            if serving:
                self._activate(model, version)
            return models

        self._update(_models_key(app_name), update)
        return self.model(app_name, model_name)

    @classmethod
    def _activate(cls, model: Dict, version: int) -> None:
        # Any activation ends an in-flight rollout: clear the split record
        # and demote its canary arm in the same swap, so no path (rollout,
        # rollback, deploy with activate=True, promotion) can leave the
        # durable record claiming a split that live routing discarded.
        split_record = model.pop("traffic_split", None)
        if split_record is not None:
            cls._demote_canary(model, split_record)
        previous = model["active_version"]
        if previous is not None and previous != version:
            model["previous_version"] = previous
            model["versions"][str(previous)]["state"] = VERSION_RETIRED
        model["active_version"] = version
        model["versions"][str(version)]["state"] = VERSION_SERVING

    @staticmethod
    def _demote_canary(model: Dict, split_record: Dict[str, Any]) -> None:
        """Return a split's canary arm to its pre-canary lifecycle state.

        The rollback target keeps its ``retired`` marker (a canary of the
        previously-serving version is legal); everything else returns to
        ``staged``.
        """
        canary_version = str(split_record.get("canary", "")).rpartition(":")[2]
        record = model["versions"].get(canary_version)
        if record is None or record["state"] != VERSION_CANARY:
            return
        is_rollback_target = str(model.get("previous_version")) == canary_version
        record["state"] = VERSION_RETIRED if is_rollback_target else VERSION_STAGED

    def set_active_version(
        self, app_name: str, model_name: str, version: int
    ) -> Dict[str, Any]:
        """Record a rollout (or rollback) of ``model_name`` to ``version``."""
        self._require_app(app_name)

        def update(models: Dict) -> Dict:
            model = self._require_model(models, model_name)
            vkey = str(version)
            if vkey not in model["versions"]:
                raise ManagementError(
                    f"version {version} of model '{model_name}' is not registered"
                )
            if model["versions"][vkey]["state"] == VERSION_UNDEPLOYED:
                raise ManagementError(
                    f"version {version} of model '{model_name}' has been undeployed"
                )
            self._activate(model, version)
            return models

        self._update(_models_key(app_name), update)
        return self.model(app_name, model_name)

    def set_num_replicas(
        self, app_name: str, model_name: str, version: int, num_replicas: int
    ) -> Dict[str, Any]:
        """Record the replica count of one version after a scaling op."""
        self._require_app(app_name)

        def update(models: Dict) -> Dict:
            model = self._require_model(models, model_name)
            record = model["versions"].get(str(version))
            if record is None:
                raise ManagementError(
                    f"version {version} of model '{model_name}' is not registered"
                )
            record["num_replicas"] = int(num_replicas)
            return models

        self._update(_models_key(app_name), update)
        return self.model(app_name, model_name)

    def mark_undeployed(
        self, app_name: str, model_name: str, version: int
    ) -> Dict[str, Any]:
        """Record that one version's machinery was torn down.

        The version record is retained (deploy history survives) but can no
        longer be activated.
        """
        self._require_app(app_name)

        def update(models: Dict) -> Dict:
            model = self._require_model(models, model_name)
            record = model["versions"].get(str(version))
            if record is None:
                raise ManagementError(
                    f"version {version} of model '{model_name}' is not registered"
                )
            record["state"] = VERSION_UNDEPLOYED
            if model["active_version"] == version:
                model["active_version"] = None
            if model["previous_version"] == version:
                model["previous_version"] = None
            # Undeploying either arm of an in-flight split ends the rollout
            # (the serving engine aborts it in memory); drop the record and
            # demote a surviving canary arm in the same swap.
            split_record = model.get("traffic_split")
            if split_record is not None:
                arm_versions = {
                    str(key).rpartition(":")[2] for key, _ in split_record["arms"]
                }
                if str(version) in arm_versions:
                    del model["traffic_split"]
                    self._demote_canary(model, split_record)
            return models

        self._update(_models_key(app_name), update)
        return self.model(app_name, model_name)

    # -- traffic splits (canary rollouts) --------------------------------------

    def set_traffic_split(
        self, app_name: str, model_name: str, split_record: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Record an in-flight traffic split (start or weight adjustment).

        The canary version named by the record moves to the ``canary``
        lifecycle state; it must be registered and not undeployed.  The
        whole update is one compare-and-swap, so concurrent operators never
        observe a split without its version state (or vice versa).
        """
        self._require_app(app_name)
        canary_key = split_record.get("canary")
        if canary_key is None:
            raise ManagementError(
                f"traffic-split record for '{model_name}' names no canary arm"
            )
        canary_version = str(canary_key).rpartition(":")[2]

        def update(models: Dict) -> Dict:
            model = self._require_model(models, model_name)
            record = model["versions"].get(canary_version)
            if record is None:
                raise ManagementError(
                    f"canary version {canary_version} of model '{model_name}' "
                    "is not registered"
                )
            if record["state"] == VERSION_UNDEPLOYED:
                raise ManagementError(
                    f"canary version {canary_version} of model '{model_name}' "
                    "has been undeployed"
                )
            model["traffic_split"] = copy.deepcopy(split_record)
            record["state"] = VERSION_CANARY
            return models

        self._update(_models_key(app_name), update)
        return self.model(app_name, model_name)

    def clear_traffic_split(
        self, app_name: str, model_name: str, promote_to: Optional[int] = None
    ) -> Dict[str, Any]:
        """Record the end of a rollout: promotion or abort, atomically.

        With ``promote_to`` the named version becomes the active one (the
        displaced version retiring as the rollback target); without it the
        abort returns the canary version to ``staged``.  Either way the
        split record is removed in the same compare-and-swap.
        """
        self._require_app(app_name)

        def update(models: Dict) -> Dict:
            model = self._require_model(models, model_name)
            split_record = model.pop("traffic_split", None)
            if promote_to is not None:
                vkey = str(promote_to)
                if vkey not in model["versions"]:
                    raise ManagementError(
                        f"version {promote_to} of model '{model_name}' is not registered"
                    )
                if model["versions"][vkey]["state"] == VERSION_UNDEPLOYED:
                    raise ManagementError(
                        f"version {promote_to} of model '{model_name}' has been undeployed"
                    )
                self._activate(model, promote_to)
            elif split_record is not None:
                self._demote_canary(model, split_record)
            return models

        self._update(_models_key(app_name), update)
        return self.model(app_name, model_name)

    def traffic_split(self, app_name: str, model_name: str) -> Optional[Dict[str, Any]]:
        """The recorded in-flight split of one model (None when stable)."""
        return self.model(app_name, model_name).get("traffic_split")

    @staticmethod
    def _require_model(models: Dict, model_name: str) -> Dict:
        model = models.get(model_name)
        if model is None:
            raise ManagementError(f"model '{model_name}' is not registered")
        return model

    # -- read side -------------------------------------------------------------

    def models(self, app_name: str) -> Dict[str, Dict[str, Any]]:
        """Every model record of one application."""
        self._require_app(app_name)
        return copy.deepcopy(self.store.get(self.namespace, _models_key(app_name), {}))

    def model(self, app_name: str, model_name: str) -> Dict[str, Any]:
        """The record of one model (active/previous version + version map)."""
        models = self.models(app_name)
        if model_name not in models:
            raise ManagementError(f"model '{model_name}' is not registered")
        return models[model_name]

    def active_version(self, app_name: str, model_name: str) -> Optional[int]:
        """The version of ``model_name`` recorded as serving, if any."""
        return self.model(app_name, model_name)["active_version"]
