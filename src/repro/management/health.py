"""Health-driven replica recovery.

The paper's management plane restarts model containers that stop responding
so the serving tier self-heals without operator action.  The
:class:`HealthMonitor` reproduces that loop for one running
:class:`~repro.core.clipper.Clipper`:

* **probe** — every replica of every deployed version is probed over RPC on
  an interval (the heartbeat reply carries the container's own ``healthy()``
  verdict).  A probe fails when the replica does not answer within the probe
  timeout, answers unhealthy, or answers slower than an optional latency
  ceiling.  Dispatcher batch failures count as a passive signal alongside
  the active probes, so a replica that dies mid-traffic is caught without
  waiting for the next probe tick.
* **quarantine** — after ``failure_threshold`` consecutive failures the
  replica's dispatcher is detached from the live batching queue (its
  in-flight batch drains or is re-enqueued; queued queries flow to healthy
  siblings) and the replica stops receiving traffic.
* **recover** — a per-replica background task rebuilds the container from
  the deployment's factory with exponential backoff, health-checks the
  replacement, and only then re-attaches the dispatcher to the queue.

Progress is visible through the Clipper's :class:`MetricsRegistry`
(``health.probes``, ``health.probe_failures``, ``health.quarantines``,
``health.restarts``, ``health.recoveries``) and through :meth:`status`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.core.clipper import Clipper
from repro.core.exceptions import ContainerError
from repro.management.records import (
    REPLICA_HEALTHY,
    REPLICA_QUARANTINED,
    REPLICA_RECOVERING,
    ReplicaHealth,
)
from repro.observability.logging import get_logger

logger = get_logger("management.health")


class HealthMonitor:
    """Probes a Clipper's replicas, quarantining and restarting sick ones.

    Parameters
    ----------
    clipper:
        The serving instance to watch.
    probe_interval_s:
        Delay between probe sweeps over every replica.
    failure_threshold:
        Consecutive probe failures (or dispatcher batch failures) that
        trigger quarantine.
    probe_timeout_s:
        Deadline for one heartbeat probe, including waiting behind an
        in-flight batch on the replica's RPC connection.
    latency_ceiling_ms:
        Optional ceiling on the probe round-trip: slower replies count as
        failures even when the replica eventually answers (a replica this
        slow is straggling every batch it serves).
    restart_backoff_s / backoff_factor / max_backoff_s:
        Exponential-backoff schedule for restart attempts while a replica
        stays sick.
    """

    def __init__(
        self,
        clipper: Clipper,
        probe_interval_s: float = 0.1,
        failure_threshold: int = 3,
        probe_timeout_s: float = 1.0,
        latency_ceiling_ms: Optional[float] = None,
        restart_backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 2.0,
    ) -> None:
        self.clipper = clipper
        self.probe_interval_s = probe_interval_s
        self.failure_threshold = failure_threshold
        self.probe_timeout_s = probe_timeout_s
        self.latency_ceiling_ms = latency_ceiling_ms
        self.restart_backoff_s = restart_backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s

        metrics = clipper.metrics
        self._probe_counter = metrics.counter("health.probes")
        self._failure_counter = metrics.counter("health.probe_failures")
        self._quarantine_counter = metrics.counter("health.quarantines")
        self._restart_counter = metrics.counter("health.restarts")
        self._recovery_counter = metrics.counter("health.recoveries")

        self._statuses: Dict[Tuple[str, int], ReplicaHealth] = {}
        self._recovery_tasks: Dict[Tuple[str, int], asyncio.Task] = {}
        self._task: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Start the probe loop as a background task."""
        if self._task is None or self._task.done():
            self._running = True
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop probing and cancel any in-flight recovery tasks."""
        self._running = False
        tasks = [self._task] + list(self._recovery_tasks.values())
        self._task = None
        self._recovery_tasks.clear()
        for task in tasks:
            if task is None or task.done():
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        while self._running:
            try:
                await self.probe_once()
            except asyncio.CancelledError:
                raise
            except Exception:
                # The monitor must outlive transient probe errors (e.g. a
                # replica torn down mid-sweep by a concurrent scale-down).
                pass
            await asyncio.sleep(self.probe_interval_s)

    # -- probing ----------------------------------------------------------------

    async def probe_once(self) -> None:
        """Sweep every replica of every deployed version once.

        Probes run concurrently so one unresponsive replica burning its full
        ``probe_timeout_s`` does not delay failure detection for the others.
        """
        targets = []
        for record in self.clipper.model_records():
            model_key = str(record.model_id)
            for replica in list(record.replica_set):
                status = self._status_for(model_key, replica)
                if status.state != REPLICA_HEALTHY:
                    continue  # a recovery task owns this replica
                dispatcher = record.dispatcher_for(replica)
                if (
                    dispatcher is not None
                    and dispatcher.consecutive_failures >= self.failure_threshold
                ):
                    # Passive signal: the dispatcher saw the replica fail
                    # batch after batch; no need to wait for probes to agree.
                    await self._quarantine(record, replica, status)
                    continue
                targets.append((record, replica, status))
        if not targets:
            return
        results = await asyncio.gather(
            *(self._probe_replica(replica) for _, replica, _ in targets)
        )
        for (record, replica, status), (ok, rtt_ms) in zip(targets, results):
            self._probe_counter.increment()
            status.probes += 1
            status.last_probe_latency_ms = rtt_ms
            if ok and (
                self.latency_ceiling_ms is None or rtt_ms <= self.latency_ceiling_ms
            ):
                status.consecutive_failures = 0
                continue
            status.consecutive_failures += 1
            status.failures += 1
            self._failure_counter.increment()
            if status.consecutive_failures >= self.failure_threshold:
                await self._quarantine(record, replica, status)

    async def _probe_replica(self, replica) -> Tuple[bool, float]:
        start = time.perf_counter()
        ok = await replica.check_health(timeout_s=self.probe_timeout_s)
        return ok, (time.perf_counter() - start) * 1000.0

    def _status_for(self, model_key: str, replica) -> ReplicaHealth:
        key = (model_key, replica.replica_id)
        status = self._statuses.get(key)
        if status is None:
            status = ReplicaHealth(
                replica_name=replica.name,
                model_key=model_key,
                replica_id=replica.replica_id,
            )
            self._statuses[key] = status
        return status

    # -- quarantine & recovery ---------------------------------------------------

    async def _quarantine(self, record, replica, status: ReplicaHealth) -> None:
        status.mark(REPLICA_QUARANTINED)
        status.quarantines += 1
        self._quarantine_counter.increment()
        logger.warning(
            "replica quarantined: %s",
            replica.name,
            extra={
                "model": str(record.model_id),
                "replica_id": replica.replica_id,
                "quarantines": status.quarantines,
                "consecutive_failures": status.consecutive_failures,
            },
        )
        dispatcher = record.dispatcher_for(replica)
        if dispatcher is not None:
            # Detach from the live queue: the in-flight batch completes (or
            # re-enqueues its queries on failure) and queued queries flow to
            # the model's healthy replicas.
            await dispatcher.stop()
        key = (str(record.model_id), replica.replica_id)
        self._recovery_tasks[key] = asyncio.get_running_loop().create_task(
            self._recover(record, replica, dispatcher, status)
        )

    async def _recover(self, record, replica, dispatcher, status: ReplicaHealth) -> None:
        """Restart a quarantined replica with backoff until it probes healthy."""
        key = (str(record.model_id), replica.replica_id)
        backoff = self.restart_backoff_s
        current = replica
        try:
            while self._running:
                await asyncio.sleep(backoff)
                status.mark(REPLICA_RECOVERING)
                try:
                    fresh = await record.replica_set.replace_replica(current)
                except ContainerError:
                    # The replica was scaled away (or the model undeployed)
                    # while quarantined; nothing left to recover.
                    return
                except asyncio.CancelledError:
                    raise
                except Exception:
                    # A transiently failing container factory must not kill
                    # the recovery task — that would abandon the replica in
                    # quarantine forever.  Treat it as a failed attempt.
                    status.mark(REPLICA_QUARANTINED)
                    backoff = min(backoff * self.backoff_factor, self.max_backoff_s)
                    continue
                self._restart_counter.increment()
                status.restarts += 1
                current = fresh
                try:
                    await fresh.start()
                    healthy = await fresh.check_health(timeout_s=self.probe_timeout_s)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    healthy = False
                if healthy:
                    if dispatcher is not None:
                        dispatcher.replica = fresh
                        dispatcher.consecutive_failures = 0
                        if self.clipper.is_started:
                            dispatcher.start()
                    status.mark(REPLICA_HEALTHY)
                    status.consecutive_failures = 0
                    self._recovery_counter.increment()
                    logger.info(
                        "replica recovered: %s",
                        fresh.name,
                        extra={
                            "model": str(record.model_id),
                            "replica_id": fresh.replica_id,
                            "restarts": status.restarts,
                        },
                    )
                    return
                status.mark(REPLICA_QUARANTINED)
                backoff = min(backoff * self.backoff_factor, self.max_backoff_s)
        finally:
            self._recovery_tasks.pop(key, None)

    # -- introspection ------------------------------------------------------------

    def status(self) -> Dict[str, ReplicaHealth]:
        """Health record per replica name (includes replaced replicas' history)."""
        return {status.replica_name: status for status in self._statuses.values()}

    def replicas_in_state(self, state: str) -> List[ReplicaHealth]:
        return [s for s in self._statuses.values() if s.state == state]

    def statuses_for(self, model_key: str) -> List[ReplicaHealth]:
        """Health records of every replica of one model version key."""
        return [s for s in self._statuses.values() if s.model_key == model_key]

    def quarantines_for(self, model_key: str) -> int:
        """Total quarantines recorded against one model version's replicas.

        This is the quarantine signal the canary controller compares against
        its rollout-start baseline: any increase while a canary of this
        version is in flight aborts the rollout.
        """
        return sum(s.quarantines for s in self.statuses_for(model_key))

    def unhealthy_model_keys(self) -> List[str]:
        """Model version keys with at least one replica not currently healthy."""
        return sorted(
            {
                s.model_key
                for s in self._statuses.values()
                if s.state != REPLICA_HEALTHY
            }
        )

    @property
    def is_running(self) -> bool:
        return self._running
