"""Cold-start recovery: rebuilding a serving instance from registry records.

The registry (on a :class:`~repro.state.durable.DurableKeyValueStore`)
survives a crash; the serving machinery does not.  This module holds the
translation between the two: :func:`deploy_spec` captures, at deploy time,
everything needed to rebuild a :class:`~repro.core.config.ModelDeployment`
from its registry record — the server-side container-factory name (model
containers cannot be serialized; factories are the durable names for them,
exactly as the REST deploy verb already treats them), the RPC/batching
configuration, and the retry budget — and :func:`deployment_from_record`
performs the rebuild on the way back up.
:class:`~repro.management.frontend.ManagementFrontend.restore_application`
drives the whole path and files a :class:`RecoveryReport` per application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.config import BatchingConfig, ModelDeployment
from repro.core.exceptions import ManagementError

#: Version-record metadata key holding the deploy spec.
DEPLOY_SPEC_KEY = "deploy_spec"

#: BatchingConfig fields captured in (and rebuilt from) the deploy spec.
_BATCHING_FIELDS = (
    "policy",
    "initial_batch_size",
    "additive_increase",
    "backoff_fraction",
    "max_batch_size",
    "batch_wait_timeout_ms",
    "quantile",
    "quantile_window",
    "pipeline_window",
)


def deploy_spec(deployment: ModelDeployment) -> Dict[str, Any]:
    """The JSON-friendly record from which ``deployment`` can be rebuilt."""
    return {
        "factory": deployment.factory_name,
        "serialize_rpc": deployment.serialize_rpc,
        "max_batch_retries": deployment.max_batch_retries,
        "transport": deployment.transport,
        "batching": {
            name: getattr(deployment.batching, name) for name in _BATCHING_FIELDS
        },
    }


def deployment_from_record(
    model_name: str,
    version_rec: Dict[str, Any],
    factories: Mapping[str, Callable[[], object]],
) -> ModelDeployment:
    """Rebuild one version's :class:`ModelDeployment` from its registry record.

    The container factory is resolved by the deploy spec's recorded name,
    falling back to the bare model name (covers in-process deploys that
    never named a factory but registered one per model).  A version whose
    factory is not in ``factories`` cannot be restored — that is a
    :class:`ManagementError` the caller reports, not a silent skip.
    """
    spec = version_rec.get("metadata", {}).get(DEPLOY_SPEC_KEY) or {}
    factory_name = spec.get("factory") or model_name
    factory = factories.get(factory_name)
    if factory is None:
        raise ManagementError(
            f"cannot restore '{model_name}:{version_rec['version']}': no "
            f"container factory named '{factory_name}' is registered"
        )
    batching_spec = spec.get("batching")
    batching = (
        BatchingConfig(**batching_spec)
        if batching_spec
        else BatchingConfig(policy=version_rec.get("batching_policy", "aimd"))
    )
    return ModelDeployment(
        name=model_name,
        container_factory=factory,
        num_replicas=int(version_rec.get("num_replicas", 1)),
        batching=batching,
        version=int(version_rec["version"]),
        serialize_rpc=bool(spec.get("serialize_rpc", True)),
        max_batch_retries=int(spec.get("max_batch_retries", 3)),
        factory_name=spec.get("factory"),
        transport=str(spec.get("transport", "inprocess")),
    )


@dataclass
class RecoveryReport:
    """What one application's cold-start restore rebuilt (and could not)."""

    app_name: str
    versions_restored: int = 0
    routes_restored: int = 0
    canaries_resumed: int = 0
    #: Versions/routes that could not be rebuilt, each with a reason.
    skipped: List[Dict[str, Any]] = field(default_factory=list)
    #: The durable store's own load report, when it exposes one.
    store: Optional[Dict[str, Any]] = None

    @property
    def complete(self) -> bool:
        """True when every registry record was restored."""
        return not self.skipped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app_name": self.app_name,
            "versions_restored": self.versions_restored,
            "routes_restored": self.routes_restored,
            "canaries_resumed": self.canaries_resumed,
            "skipped": list(self.skipped),
            "complete": self.complete,
            "store": self.store,
        }
