"""The ingress tier: HTTP edge + Clipper over remote worker replicas.

The ingress is an ordinary single-application serving stack — ``Clipper``
behind the query/management frontends behind ``HttpApiServer`` — with one
twist: a replica-placement hook (see
:meth:`~repro.core.clipper.Clipper.set_replica_set_factory`) that turns
every deployment carrying a ``factory_name`` into a
:class:`~repro.cluster.remote.RemoteReplicaSet` placed across the live
workers of a shared :class:`~repro.cluster.registry.WorkerRegistry`.  All
admin verbs — deploy, scale, rollout, canary — arrive over the same REST
surface as before and transparently drive cluster placements.

Run one with ``python -m repro.cluster.ingress --cluster-dir DIR``; it
writes ``<cluster_dir>/ingress.json`` (host, port, pid) once the listener
is bound so supervisors and clients can find it, and drains gracefully on
SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Callable, Optional

from repro.api.http import HttpApiServer, create_server
from repro.cluster.factories import FactoryMap, default_factories, load_factories
from repro.cluster.registry import DEFAULT_TTL_S, WorkerRegistry
from repro.cluster.remote import RemoteReplicaSet, WorkerPlacer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig
from repro.core.frontend import QueryFrontend
from repro.management.frontend import ManagementFrontend

#: File the running ingress drops into the cluster dir for discovery.
INGRESS_FILE = "ingress.json"


def make_replica_set_factory(
    placer: WorkerPlacer, rpc_timeout_s: Optional[float] = 30.0
) -> Callable:
    """The placement hook installed on the ingress's Clipper.

    Deployments that name their container factory place remotely; ones that
    only carry a bare callable (no name a worker could resolve) fall back to
    the in-process default by returning ``None``.
    """

    def factory(deployment, model_id):
        if not deployment.factory_name:
            return None
        return RemoteReplicaSet(
            model_id=model_id,
            factory_name=deployment.factory_name,
            placer=placer,
            num_replicas=deployment.num_replicas,
            transport=deployment.transport,
            rpc_timeout_s=rpc_timeout_s,
        )

    return factory


class IngressTier:
    """One ingress process: registry-backed placement + the REST edge."""

    def __init__(
        self,
        cluster_dir: str,
        app_name: str = "default-app",
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ClipperConfig] = None,
        factories: Optional[FactoryMap] = None,
        ttl_s: float = DEFAULT_TTL_S,
        health_kwargs: Optional[dict] = None,
    ) -> None:
        self.registry = WorkerRegistry(cluster_dir)
        self.placer = WorkerPlacer(self.registry, ttl_s=ttl_s)
        self.config = config or ClipperConfig(app_name=app_name, allow_empty_start=True)
        self.clipper = Clipper(self.config)
        self.clipper.set_replica_set_factory(make_replica_set_factory(self.placer))
        self.query = QueryFrontend()
        self.query.register_application(self.clipper)
        self.admin = ManagementFrontend(health_kwargs=health_kwargs)
        self.admin.register_application(self.clipper)
        self._factories = dict(factories) if factories is not None else default_factories()
        self.server: HttpApiServer = create_server(
            query=self.query,
            admin=self.admin,
            factories=self._factories,
            host=host,
            port=port,
        )

    @property
    def port(self) -> Optional[int]:
        return self.server.port

    async def start(self) -> None:
        await self.server.start()

    async def drain(self, timeout_s: float = 5.0) -> None:
        await self.server.drain(timeout_s=timeout_s)

    async def stop(self) -> None:
        await self.server.stop()


def _ingress_path(cluster_dir: str) -> str:
    return os.path.join(os.path.abspath(cluster_dir), INGRESS_FILE)


def read_ingress(cluster_dir: str) -> Optional[dict]:
    """The running ingress's discovery record, or None."""
    try:
        with open(_ingress_path(cluster_dir), "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


async def _amain(args: argparse.Namespace) -> int:
    factories = load_factories(args.factories) if args.factories else None
    ingress = IngressTier(
        cluster_dir=args.cluster_dir,
        app_name=args.app,
        host=args.host,
        port=args.port,
        factories=factories,
        ttl_s=args.ttl,
    )
    await ingress.start()
    path = _ingress_path(args.cluster_dir)
    record = {
        "host": args.host,
        "port": ingress.port,
        "pid": os.getpid(),
        "app_name": args.app,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(record, handle)
    os.replace(tmp, path)
    loop = asyncio.get_running_loop()
    drained = loop.create_future()

    def _on_sigterm() -> None:
        if not drained.done():
            drained.set_result(None)

    loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
    loop.add_signal_handler(signal.SIGINT, _on_sigterm)
    print(f"INGRESS_READY {ingress.port}", flush=True)
    await drained
    try:
        os.remove(path)
    except OSError:
        pass
    await ingress.drain(timeout_s=args.drain_timeout)
    print("INGRESS_DRAINED", flush=True)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description="repro cluster ingress tier")
    parser.add_argument("--cluster-dir", required=True, help="shared registry dir")
    parser.add_argument("--app", default="default-app")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--ttl", type=float, default=DEFAULT_TTL_S)
    parser.add_argument(
        "--factories", default="", help="pkg.module:ATTR factory map override"
    )
    parser.add_argument("--drain-timeout", type=float, default=5.0)
    args = parser.parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    sys.exit(main())
