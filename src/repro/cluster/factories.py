"""Named container factories shared by workers and the ingress.

A worker daemon cannot receive a Python callable over the wire, so remote
deployments name their container factory (``deployment.factory_name``) and
every worker resolves that name against a registry like this one — the same
indirection the durable store already uses for cold-start restores.  The
ingress registers the *same* names so REST deploys validate locally even
though the factory is only ever called inside a worker.

The default registry covers the built-in containers; custom fleets point
workers at their own mapping via ``python -m repro.cluster.worker
--factories pkg.module:ATTR``.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.containers.base import ModelContainer
from repro.containers.busy import BusySpinContainer, DeviceBoundContainer
from repro.containers.noop import NoOpContainer
from repro.core.exceptions import ConfigurationError

#: name -> zero-arg factory returning a fresh ModelContainer.
FactoryMap = Dict[str, Callable[[], ModelContainer]]


def default_factories() -> FactoryMap:
    """The built-in factory names every worker understands."""
    return {
        "noop": lambda: NoOpContainer(),
        "noop_touch": lambda: NoOpContainer(touch_inputs=True),
        "busy_1ms": lambda: BusySpinContainer(spin_ms=1.0),
        "device_1ms": lambda: DeviceBoundContainer(ms_per_input=1.0),
        "echo": lambda: NoOpContainer(output=1),
    }


def load_factories(spec: str) -> FactoryMap:
    """Resolve a ``pkg.module:ATTR`` spec to a factory mapping.

    ``ATTR`` may be a dict of factories or a zero-arg callable returning
    one, so test suites can parameterize the mapping.
    """
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ConfigurationError(
            f"factory spec {spec!r} must look like 'pkg.module:ATTR'"
        )
    try:
        module = importlib.import_module(module_name)
        obj = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ConfigurationError(f"cannot load factories from {spec!r}: {exc}") from exc
    factories = obj() if callable(obj) and not isinstance(obj, dict) else obj
    if not isinstance(factories, dict):
        raise ConfigurationError(
            f"factory spec {spec!r} resolved to {type(factories).__name__}, "
            "expected a dict of name -> factory"
        )
    return dict(factories)


__all__ = ["FactoryMap", "default_factories", "load_factories"]
