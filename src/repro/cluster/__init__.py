"""Cluster serving plane: worker daemons, an ingress tier, and a supervisor.

This package promotes the single-process serving engine into the paper's
actual deployment shape (Figure 1): model containers live in separate
**worker** OS processes behind :class:`~repro.rpc.server.ContainerRpcServer`,
an **ingress** process runs the HTTP edge plus a
:class:`~repro.core.clipper.Clipper` whose replica sets attach to *remote*
worker replicas, and a **supervisor** spawns and monitors the fleet.

The pieces:

* :mod:`repro.cluster.registry` — the shared on-disk worker registry.
  Workers advertise their endpoints (tcp port, shm capability) by writing
  durable announcement records and refreshing them as heartbeats; the
  ingress resolves live workers from the same directory.
* :mod:`repro.cluster.worker` — the worker daemon.  One process hosting
  model containers built from a named factory registry, serving each over
  the container RPC protocol (tcp, or same-host shared-memory rings).
* :mod:`repro.cluster.remote` — :class:`RemoteReplica` /
  :class:`RemoteReplicaSet` / :class:`WorkerPlacer`: drop-in replacements
  for the in-process replica machinery that place container replicas on
  live workers, so the existing batching dispatchers, health monitor and
  admin verbs (deploy/scale/rollout/canary) drive cluster placements
  unchanged.
* :mod:`repro.cluster.ingress` — builds/runs the ingress tier process.
* :mod:`repro.cluster.supervisor` — spawns N workers + 1 ingress,
  restarts dead workers, drains everything on SIGTERM
  (``scripts/cluster_up.py`` is the CLI).
"""

# Lazy exports (PEP 562): ``python -m repro.cluster.worker`` imports this
# package before runpy executes the worker module as __main__, so importing
# the submodules eagerly here would execute them twice (and warn).
_EXPORTS = {
    "WorkerAnnouncement": "repro.cluster.registry",
    "WorkerRegistry": "repro.cluster.registry",
    "RemoteReplica": "repro.cluster.remote",
    "RemoteReplicaSet": "repro.cluster.remote",
    "WorkerPlacer": "repro.cluster.remote",
    "Supervisor": "repro.cluster.supervisor",
    "WorkerDaemon": "repro.cluster.worker",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.cluster' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "RemoteReplica",
    "RemoteReplicaSet",
    "Supervisor",
    "WorkerAnnouncement",
    "WorkerDaemon",
    "WorkerPlacer",
    "WorkerRegistry",
]
