"""Remote replica placement: the cluster-side twin of the replica machinery.

:class:`RemoteReplica` and :class:`RemoteReplicaSet` duck-type
:class:`~repro.containers.replica.ContainerReplica` /
:class:`~repro.containers.replica.ReplicaSet` exactly, so the batching
dispatchers, the health monitor, and every admin verb (deploy / scale /
rollout / canary) drive cluster placements without change.  The difference
is where the container lives: instead of building one in-process, a remote
replica asks a live worker daemon (resolved from the shared
:class:`~repro.cluster.registry.WorkerRegistry` by :class:`WorkerPlacer`)
to launch the container from a *named* factory, then speaks the ordinary
container RPC protocol to it over tcp — or, same-host, over shared-memory
rings negotiated automatically.

Failure semantics mirror the local set where the health monitor depends on
them: membership errors raise :class:`~repro.core.exceptions.ContainerError`
(``_recover`` treats that as "scaled away" and aborts), while *placement*
failure — no live worker in the registry — raises
:class:`~repro.core.exceptions.RpcError`, which ``_recover`` treats as
transient and retries with backoff until a worker comes back.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Optional, Sequence

from repro.cluster.registry import DEFAULT_TTL_S, WorkerAnnouncement, WorkerRegistry
from repro.core.exceptions import ContainerError, RpcError
from repro.core.types import ModelId
from repro.rpc.client import RpcClient
from repro.rpc.protocol import RpcResponse
from repro.rpc.shm import HAS_SHARED_MEMORY, attach_shm_endpoint
from repro.rpc.transport import TcpTransport

#: How long a remote replica waits for the worker's launch reply.
LAUNCH_TIMEOUT_S = 10.0


class WorkerPlacer:
    """Round-robin placement of replicas onto live registered workers."""

    def __init__(self, registry: WorkerRegistry, ttl_s: float = DEFAULT_TTL_S) -> None:
        self.registry = registry
        self.ttl_s = ttl_s
        self._round_robin = 0

    def place(self, exclude: Sequence[str] = ()) -> WorkerAnnouncement:
        """Pick a live worker, preferring ones not in ``exclude``.

        ``exclude`` lists workers believed dead or sick (e.g. the worker a
        replica just failed on); they are only used when no other worker is
        live.  Raises :class:`RpcError` — the *retryable* error class — when
        the registry has no live worker at all, so health-driven recovery
        keeps retrying until one appears instead of giving up.
        """
        live = self.registry.live_workers(self.ttl_s)
        if not live:
            raise RpcError("no live workers in the cluster registry")
        preferred = [w for w in live if w.worker_id not in exclude] or live
        worker = preferred[self._round_robin % len(preferred)]
        self._round_robin += 1
        return worker


def _resolve_lane(worker: WorkerAnnouncement, preference: str) -> tuple:
    """(lane, forced) for a replica placed on ``worker``.

    ``preference`` is the deployment's ``transport`` field.  ``"tcp"`` and
    ``"shm"`` force that lane; anything else (the in-process default) means
    *auto*: shared-memory rings when the worker advertises shm support and
    shares this host, tcp otherwise — the cross-host fallback the paper's
    same-machine fast path needs.
    """
    shm_ok = worker.shm_supported and worker.same_host_as() and HAS_SHARED_MEMORY
    if preference == "tcp":
        return "tcp", True
    if preference == "shm":
        if not shm_ok:
            raise RpcError(
                f"transport 'shm' was forced but worker {worker.worker_id} "
                "cannot serve shared memory from this host"
            )
        return "shm", True
    return ("shm", False) if shm_ok else ("tcp", False)


class RemoteReplica:
    """One replica of a model, hosted by a worker daemon in another process.

    Duck-types :class:`~repro.containers.replica.ContainerReplica`:
    ``start`` / ``stop`` / ``predict_batch`` / ``check_health`` /
    ``started`` / ``name`` / ``model_id`` / ``replica_id``.  ``start``
    connects to the worker's control port, asks it to launch the container
    from ``factory_name``, and keeps the resulting connection as the data
    lane; ``stop`` simply closes it — the worker tears the container down
    when its end of the lane goes quiet.
    """

    def __init__(
        self,
        model_id: ModelId,
        replica_id: int,
        worker: WorkerAnnouncement,
        factory_name: str,
        transport: str = "inprocess",
        rpc_timeout_s: Optional[float] = 30.0,
    ) -> None:
        self.model_id = model_id
        self.replica_id = replica_id
        self.worker = worker
        self.factory_name = factory_name
        self._model_key = str(model_id)
        self._lane, self._forced = _resolve_lane(worker, transport)
        self._rpc_timeout_s = rpc_timeout_s
        self.client: Optional[RpcClient] = None
        self._started = False

    @property
    def transport_lane(self) -> str:
        """The negotiated RPC lane ("shm" or "tcp")."""
        return self._lane

    async def _launch(self, lane: str) -> RpcClient:
        """Ask the worker to launch the container; return the data client."""
        control = await TcpTransport.connect(self.worker.tcp_host, self.worker.tcp_port)
        try:
            async with asyncio.timeout(LAUNCH_TIMEOUT_S):
                await control.send(
                    {
                        "op": "launch",
                        "model_key": self._model_key,
                        "factory": self.factory_name,
                        "transport": lane,
                        "replica": self.name,
                    }
                )
                reply = await control.recv()
        except (RpcError, TimeoutError) as exc:
            await control.close()
            raise RpcError(
                f"worker {self.worker.worker_id} did not answer launch: {exc}"
            ) from exc
        if not reply.get("ok"):
            await control.close()
            raise RpcError(
                f"worker {self.worker.worker_id} refused to launch "
                f"{self._model_key}: {reply.get('error', 'unknown error')}"
            )
        if lane == "shm":
            try:
                data = await attach_shm_endpoint(reply["shm"])
            finally:
                await control.close()
        else:
            # The control connection *is* the data connection on the tcp lane.
            data = control
        return RpcClient(data, timeout_s=self._rpc_timeout_s)

    async def start(self) -> None:
        """Launch the container on the worker and open the data lane."""
        if self._started:
            return
        try:
            self.client = await self._launch(self._lane)
        except RpcError:
            if self._lane != "shm" or self._forced:
                raise
            # Auto-negotiated shm failed (worker restarted without shm, bell
            # race, ...) — fall back to the tcp lane rather than fail the
            # replica, matching the cross-host behaviour.
            self._lane = "tcp"
            self.client = await self._launch("tcp")
        self._started = True

    async def stop(self) -> None:
        """Close the data lane; the worker reaps the container on hangup."""
        if self._started:
            self._started = False
            await self.client.close()

    async def predict_batch(
        self,
        inputs: Sequence[Any],
        trace: Optional[List[Any]] = None,
        span_log: Optional[list] = None,
        deadlines: Optional[List[float]] = None,
    ) -> RpcResponse:
        """Evaluate one batch on the remote container (pipelining-safe)."""
        if not self._started:
            raise ContainerError(self._model_key, "replica is not started")
        inputs = inputs if isinstance(inputs, list) else list(inputs)
        return await self.client.predict(
            self._model_key, inputs, trace=trace, span_log=span_log,
            deadlines=deadlines,
        )

    async def check_health(self, timeout_s: Optional[float] = None) -> bool:
        """Heartbeat the remote container; False on any failure path."""
        if not self._started:
            return False
        try:
            return await self.client.heartbeat(timeout_s=timeout_s)
        except RpcError:
            return False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def name(self) -> str:
        return f"{self.model_id}[{self.replica_id}]@{self.worker.worker_id}"


class RemoteReplicaSet:
    """All remote replicas of one deployed model, spread across workers.

    Mirrors :class:`~repro.containers.replica.ReplicaSet`'s contract:
    monotonic replica ids, ``remove_replica`` refuses to empty the set,
    ``replace_replica`` returns an *unstarted* fresh replica with the same
    id — but the fresh replica is re-placed, preferring a worker other
    than the one the sick replica ran on.
    """

    def __init__(
        self,
        model_id: ModelId,
        factory_name: str,
        placer: WorkerPlacer,
        num_replicas: int = 1,
        transport: str = "inprocess",
        rpc_timeout_s: Optional[float] = 30.0,
    ) -> None:
        if num_replicas < 1:
            raise ContainerError(str(model_id), "num_replicas must be >= 1")
        if not factory_name:
            raise ContainerError(
                str(model_id),
                "remote placement needs a named container factory "
                "(deployment.factory_name) the worker can resolve",
            )
        self.model_id = model_id
        self.factory_name = factory_name
        self._placer = placer
        self._transport = transport
        self._rpc_timeout_s = rpc_timeout_s
        self._next_replica_id = 0
        self.replicas: List[RemoteReplica] = []
        for _ in range(num_replicas):
            self.add_replica()

    def _build_replica(
        self, replica_id: int, exclude: Sequence[str] = ()
    ) -> RemoteReplica:
        worker = self._placer.place(exclude=exclude)
        return RemoteReplica(
            model_id=self.model_id,
            replica_id=replica_id,
            worker=worker,
            factory_name=self.factory_name,
            transport=self._transport,
            rpc_timeout_s=self._rpc_timeout_s,
        )

    def add_replica(self) -> RemoteReplica:
        """Place (but do not start) one more replica and return it."""
        replica = self._build_replica(self._next_replica_id)
        self._next_replica_id += 1
        self.replicas.append(replica)
        return replica

    def remove_replica(self, replica: RemoteReplica) -> None:
        """Remove a replica from the set (the caller stops it)."""
        if len(self.replicas) <= 1:
            raise ContainerError(str(self.model_id), "cannot remove the last replica")
        try:
            self.replicas.remove(replica)
        except ValueError:
            raise ContainerError(
                str(self.model_id), f"{replica.name} is not a member of this replica set"
            ) from None

    async def replace_replica(self, replica: RemoteReplica) -> RemoteReplica:
        """Swap a sick replica for a fresh one with the same id, re-placed.

        The replacement prefers a worker other than the sick replica's —
        when a worker dies, recovery naturally migrates its replicas onto
        the survivors.  Raises :class:`RpcError` (retryable) when no worker
        is live, so the health monitor keeps trying.
        """
        try:
            index = self.replicas.index(replica)
        except ValueError:
            raise ContainerError(
                str(self.model_id), f"{replica.name} is not a member of this replica set"
            ) from None
        fresh = self._build_replica(
            replica.replica_id, exclude=(replica.worker.worker_id,)
        )
        await replica.stop()
        self.replicas[index] = fresh
        return fresh

    async def start(self) -> None:
        for replica in self.replicas:
            await replica.start()

    async def stop(self) -> None:
        for replica in self.replicas:
            await replica.stop()

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)


__all__ = ["LAUNCH_TIMEOUT_S", "RemoteReplica", "RemoteReplicaSet", "WorkerPlacer"]
