"""The cluster supervisor: spawn, monitor, restart, drain.

Spawns N worker daemons and one ingress as child processes (the same
``python -m repro.cluster.worker`` / ``-m repro.cluster.ingress`` entry
points an operator would run by hand), waits for each child's ready marker
on stdout, restarts workers that die unexpectedly, and on shutdown drains
the ingress *first* (the edge stops taking traffic before its backends go
away) and then the workers.  ``scripts/cluster_up.py`` is the CLI.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

import repro
from repro.cluster.ingress import read_ingress
from repro.core.exceptions import ClipperError

#: src/ directory the children need on PYTHONPATH to import repro.
_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class _Child:
    """One supervised child process with a line pump and a ready marker."""

    def __init__(self, name: str, argv: List[str], ready_marker: str) -> None:
        self.name = name
        self.argv = argv
        self.ready_marker = ready_marker
        self.lines: List[str] = []
        self.ready = threading.Event()
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._pump = threading.Thread(target=self._pump_lines, daemon=True)
        self._pump.start()

    def _pump_lines(self) -> None:
        for line in self.proc.stdout:
            line = line.rstrip("\n")
            self.lines.append(line)
            if line.startswith(self.ready_marker):
                self.ready.set()
        self.ready.set()  # EOF: unblock waiters either way

    def wait_ready(self, timeout_s: float) -> bool:
        if not self.ready.wait(timeout_s):
            return False
        return self.proc.poll() is None and any(
            line.startswith(self.ready_marker) for line in self.lines
        )

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def terminate(self) -> None:
        if self.alive:
            self.proc.send_signal(signal.SIGTERM)

    def kill(self) -> None:
        if self.alive:
            self.proc.kill()

    def wait(self, timeout_s: float) -> Optional[int]:
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            return None


class Supervisor:
    """Spawns and babysits N worker daemons plus one ingress process."""

    def __init__(
        self,
        cluster_dir: str,
        num_workers: int = 2,
        app_name: str = "default-app",
        factories_spec: str = "",
        no_shm: bool = False,
        ready_timeout_s: float = 30.0,
        python: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ClipperError("num_workers must be >= 1")
        self.cluster_dir = os.path.abspath(cluster_dir)
        self.num_workers = num_workers
        self.app_name = app_name
        self.factories_spec = factories_spec
        self.no_shm = no_shm
        self.ready_timeout_s = ready_timeout_s
        self.python = python or sys.executable
        self.workers: Dict[str, _Child] = {}
        self.ingress: Optional[_Child] = None
        self.restarts = 0
        self._shutting_down = False

    # -- spawning ----------------------------------------------------------------

    def _worker_argv(self, worker_id: str) -> List[str]:
        argv = [
            self.python,
            "-m",
            "repro.cluster.worker",
            "--cluster-dir",
            self.cluster_dir,
            "--worker-id",
            worker_id,
        ]
        if self.factories_spec:
            argv += ["--factories", self.factories_spec]
        if self.no_shm:
            argv.append("--no-shm")
        return argv

    def _spawn_worker(self, worker_id: str) -> _Child:
        child = _Child(worker_id, self._worker_argv(worker_id), "WORKER_READY")
        self.workers[worker_id] = child
        return child

    def start(self) -> int:
        """Bring up the fleet; returns the ingress port."""
        os.makedirs(self.cluster_dir, exist_ok=True)
        for index in range(self.num_workers):
            self._spawn_worker(f"worker-{index}")
        for child in self.workers.values():
            if not child.wait_ready(self.ready_timeout_s):
                self.shutdown(timeout_s=5.0)
                raise ClipperError(
                    f"worker {child.name} did not become ready: "
                    + "\n".join(child.lines[-10:])
                )
        argv = [
            self.python,
            "-m",
            "repro.cluster.ingress",
            "--cluster-dir",
            self.cluster_dir,
            "--app",
            self.app_name,
        ]
        if self.factories_spec:
            argv += ["--factories", self.factories_spec]
        self.ingress = _Child("ingress", argv, "INGRESS_READY")
        if not self.ingress.wait_ready(self.ready_timeout_s):
            self.shutdown(timeout_s=5.0)
            raise ClipperError(
                "ingress did not become ready: " + "\n".join(self.ingress.lines[-10:])
            )
        record = read_ingress(self.cluster_dir)
        if record is None:
            self.shutdown(timeout_s=5.0)
            raise ClipperError("ingress never wrote its discovery record")
        return int(record["port"])

    # -- monitoring --------------------------------------------------------------

    def poll(self) -> None:
        """Restart any worker that died unexpectedly (once per call)."""
        if self._shutting_down:
            return
        for worker_id, child in list(self.workers.items()):
            if not child.alive:
                self.restarts += 1
                replacement = self._spawn_worker(worker_id)
                replacement.wait_ready(self.ready_timeout_s)

    def ingress_alive(self) -> bool:
        return self.ingress is not None and self.ingress.alive

    # -- shutdown ----------------------------------------------------------------

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Drain the fleet: ingress first, then workers, kill stragglers."""
        self._shutting_down = True
        deadline = time.monotonic() + timeout_s
        if self.ingress is not None:
            self.ingress.terminate()
            if self.ingress.wait(max(0.1, deadline - time.monotonic())) is None:
                self.ingress.kill()
                self.ingress.wait(5.0)
        for child in self.workers.values():
            child.terminate()
        for child in self.workers.values():
            if child.wait(max(0.1, deadline - time.monotonic())) is None:
                child.kill()
                child.wait(5.0)

    def run_forever(self, poll_interval_s: float = 0.5) -> None:
        """Monitor loop used by the CLI: poll until told to shut down."""
        stop = threading.Event()

        def _on_signal(signum, frame) -> None:
            stop.set()

        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
            signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
        }
        try:
            while not stop.is_set():
                self.poll()
                stop.wait(poll_interval_s)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.shutdown()


__all__ = ["Supervisor"]
