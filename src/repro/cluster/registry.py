"""The shared on-disk worker registry.

Workers advertise themselves to the cluster by writing one durable JSON
record each into a shared directory; the ingress (and the supervisor)
discover live workers by scanning the same directory.  Heartbeats are
re-announcements with a fresh timestamp, and liveness is a TTL over that
timestamp — a worker that stops heartbeating (crash, SIGKILL, partition)
silently ages out of :meth:`WorkerRegistry.live_workers`.

Why files, not the WAL-backed :class:`~repro.state.durable.DurableKeyValueStore`:
the WAL is strictly single-writer, and the registry has one writer *per
record* but many writers per directory.  One file per worker, written with
the repo's tmp + fsync + atomic-rename discipline, gives each record exactly
one writer — a last-writer-wins register per worker — so concurrent
announcements never interleave and a torn write is impossible to observe.
That single-writer-per-key shape is deliberately the one a replicated
registry (PAPERS.md, "Verifying Strong Eventual Consistency") can later
replace: LWW registers keyed by worker id converge trivially.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Subdirectory of the cluster dir holding one announcement file per worker.
WORKERS_SUBDIR = "workers"

#: Default liveness TTL: a worker whose announcement is older than this many
#: seconds is considered dead.  Workers heartbeat at a small fraction of it.
DEFAULT_TTL_S = 5.0


@dataclass
class WorkerAnnouncement:
    """One worker's advertisement: identity, endpoints, and liveness stamp."""

    worker_id: str
    host: str
    pid: int
    tcp_host: str
    tcp_port: int
    shm_supported: bool = False
    started_at: float = 0.0
    heartbeat_at: float = 0.0
    models: List[str] = field(default_factory=list)

    def to_record(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_record(record: dict) -> "WorkerAnnouncement":
        return WorkerAnnouncement(
            worker_id=str(record["worker_id"]),
            host=str(record["host"]),
            pid=int(record["pid"]),
            tcp_host=str(record["tcp_host"]),
            tcp_port=int(record["tcp_port"]),
            shm_supported=bool(record.get("shm_supported", False)),
            started_at=float(record.get("started_at", 0.0)),
            heartbeat_at=float(record.get("heartbeat_at", 0.0)),
            models=list(record.get("models", [])),
        )

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (now if now is not None else time.time()) - self.heartbeat_at

    def same_host_as(self, hostname: Optional[str] = None) -> bool:
        """Whether this worker runs on the given (default: local) host."""
        return self.host == (hostname or socket.gethostname())


class WorkerRegistry:
    """Durable worker announcements in a shared cluster directory."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        self._workers_dir = os.path.join(self.directory, WORKERS_SUBDIR)
        os.makedirs(self._workers_dir, exist_ok=True)

    def _path_for(self, worker_id: str) -> str:
        if not worker_id or "/" in worker_id or worker_id.startswith("."):
            raise ValueError(f"invalid worker id {worker_id!r}")
        return os.path.join(self._workers_dir, f"{worker_id}.json")

    # -- the worker side ---------------------------------------------------------

    def announce(self, announcement: WorkerAnnouncement) -> None:
        """Durably publish (or refresh) one worker's announcement.

        tmp + fsync + atomic rename: readers only ever observe a complete
        record, and a crash mid-write leaves the previous announcement (or
        nothing) in place — never a torn one.
        """
        announcement.heartbeat_at = time.time()
        if not announcement.started_at:
            announcement.started_at = announcement.heartbeat_at
        path = self._path_for(announcement.worker_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        data = json.dumps(announcement.to_record(), separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def withdraw(self, worker_id: str) -> None:
        """Remove a worker's announcement (graceful shutdown)."""
        try:
            os.remove(self._path_for(worker_id))
        except FileNotFoundError:
            pass

    # -- the ingress / supervisor side -------------------------------------------

    def workers(self) -> Dict[str, WorkerAnnouncement]:
        """Every parseable announcement on disk, live or stale."""
        found: Dict[str, WorkerAnnouncement] = {}
        try:
            names = os.listdir(self._workers_dir)
        except FileNotFoundError:
            return found
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._workers_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                announcement = WorkerAnnouncement.from_record(record)
            except (OSError, ValueError, KeyError, TypeError):
                continue  # mid-replace race or junk file; skip this scan
            found[announcement.worker_id] = announcement
        return found

    def live_workers(self, ttl_s: float = DEFAULT_TTL_S) -> List[WorkerAnnouncement]:
        """Workers whose last heartbeat is within ``ttl_s``, sorted by id."""
        now = time.time()
        return [
            announcement
            for worker_id, announcement in sorted(self.workers().items())
            if announcement.age_s(now) <= ttl_s
        ]

    def worker(self, worker_id: str) -> Optional[WorkerAnnouncement]:
        """One worker's announcement, or None when it never announced."""
        return self.workers().get(worker_id)


__all__ = ["DEFAULT_TTL_S", "WorkerAnnouncement", "WorkerRegistry"]
