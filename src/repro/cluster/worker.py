"""The worker daemon: one OS process hosting model containers for the cluster.

A worker binds a loopback control port, announces itself (endpoints + shm
capability) into the shared :class:`~repro.cluster.registry.WorkerRegistry`,
and heartbeats the announcement so the ingress can tell live workers from
dead ones.  Each inbound control connection speaks a tiny ``op``-keyed
handshake:

``{"op": "ping"}``
    liveness probe; answered in place, the connection stays open.
``{"op": "launch", "model_key": ..., "factory": ..., "transport": ...}``
    build a fresh container from the named factory and serve it over the
    container RPC protocol.  On the ``tcp`` lane the control connection
    *becomes* the data connection; on the ``shm`` lane the worker creates a
    shared-memory ring pair, replies with its attach descriptor, and serves
    over the rings once the peer's doorbells connect.

The container lives exactly as long as its data lane: when the ingress
closes the connection (undeploy, scale-down, replica replacement) — or
vanishes — the serve loop ends and the container is reaped.  SIGTERM causes
a graceful drain: withdraw the announcement, stop accepting, finish every
in-flight batch, exit.

Run one with ``python -m repro.cluster.worker --cluster-dir DIR --worker-id ID``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import socket
import sys
import tempfile
from typing import Optional, Set

from repro.cluster.factories import FactoryMap, default_factories, load_factories
from repro.cluster.registry import DEFAULT_TTL_S, WorkerAnnouncement, WorkerRegistry
from repro.core.exceptions import RpcError
from repro.rpc.server import ContainerRpcServer
from repro.rpc.shm import HAS_SHARED_MEMORY, ShmHostEndpoint
from repro.rpc.transport import TcpListener, Transport

#: How long the worker waits for a shm peer to connect its doorbells.
SHM_ACCEPT_TIMEOUT_S = 10.0

#: UNIX socket paths are capped around 104-108 bytes; bell sockets fall back
#: to a short private tmp dir when the cluster dir would push past this.
_MAX_BELL_DIR_LEN = 70


class WorkerDaemon:
    """Hosts model containers behind the container RPC protocol."""

    def __init__(
        self,
        worker_id: str,
        cluster_dir: str,
        factories: Optional[FactoryMap] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ttl_s: float = DEFAULT_TTL_S,
        use_executor: bool = True,
        shm_enabled: bool = True,
    ) -> None:
        self.worker_id = worker_id
        self.registry = WorkerRegistry(cluster_dir)
        self._factories = dict(factories) if factories is not None else default_factories()
        self._listener = TcpListener(host=host, port=port)
        self._ttl_s = ttl_s
        self._use_executor = use_executor
        self._shm_enabled = shm_enabled and HAS_SHARED_MEMORY
        bell_dir = os.path.join(self.registry.directory, "bells")
        if len(bell_dir) > _MAX_BELL_DIR_LEN:
            bell_dir = tempfile.mkdtemp(prefix="repro-bells-")
        self._bell_dir = bell_dir
        self._announcement: Optional[WorkerAnnouncement] = None
        self._servers: Set[ContainerRpcServer] = set()
        self._active_models: Set[str] = set()
        self._model_counts: dict = {}
        self._tasks: Set[asyncio.Task] = set()
        self._accept_task: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._listener.port

    async def start(self) -> None:
        """Bind the control port, announce into the registry, begin serving."""
        await self._listener.start()
        self._announcement = WorkerAnnouncement(
            worker_id=self.worker_id,
            host=socket.gethostname(),
            pid=os.getpid(),
            tcp_host=self._listener.host,
            tcp_port=self._listener.port,
            shm_supported=self._shm_enabled,
        )
        self._announce()
        loop = asyncio.get_running_loop()
        self._accept_task = loop.create_task(self._accept_loop())
        self._heartbeat_task = loop.create_task(self._heartbeat_loop())

    def _announce(self) -> None:
        self._announcement.models = sorted(self._active_models)
        self.registry.announce(self._announcement)

    async def _heartbeat_loop(self) -> None:
        interval = max(0.05, min(1.0, self._ttl_s / 3.0))
        while not self._stopping.is_set():
            await asyncio.sleep(interval)
            try:
                self._announce()
            except OSError:
                pass  # registry dir vanished mid-shutdown; next beat retries

    async def _accept_loop(self) -> None:
        while True:
            transport = await self._listener.accept()
            task = asyncio.get_running_loop().create_task(
                self._serve_connection(transport)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    # -- the control protocol ----------------------------------------------------

    async def _serve_connection(self, control: Transport) -> None:
        """Answer control ops until the peer hangs up or a launch takes over."""
        try:
            while True:
                try:
                    message = await control.recv()
                except RpcError:
                    return
                op = message.get("op")
                if op == "ping":
                    await control.send(
                        {"ok": True, "worker_id": self.worker_id, "pid": os.getpid()}
                    )
                    continue
                if op == "launch":
                    await self._handle_launch(control, message)
                    return
                await control.send({"ok": False, "error": f"unknown op {op!r}"})
        except RpcError:
            return
        finally:
            await control.close()

    async def _handle_launch(self, control: Transport, message: dict) -> None:
        factory_name = str(message.get("factory", ""))
        model_key = str(message.get("model_key", ""))
        lane = str(message.get("transport", "tcp"))
        factory = self._factories.get(factory_name)
        if factory is None:
            await control.send(
                {
                    "ok": False,
                    "error": f"worker {self.worker_id} has no container factory "
                    f"named {factory_name!r}",
                }
            )
            return
        if lane == "shm" and not self._shm_enabled:
            await control.send(
                {"ok": False, "error": f"worker {self.worker_id} has shm disabled"}
            )
            return
        try:
            container = factory()
        except Exception as exc:
            await control.send(
                {"ok": False, "error": f"container factory failed: {exc}"}
            )
            return
        if lane == "shm":
            endpoint = ShmHostEndpoint(self._bell_dir)
            await control.send({"ok": True, "shm": endpoint.descriptor()})
            try:
                data = await endpoint.accept(timeout_s=SHM_ACCEPT_TIMEOUT_S)
            except RpcError:
                return  # accept() already tore the endpoint down
            await control.close()
        else:
            await control.send({"ok": True})
            data = control
        server = ContainerRpcServer(container, data, use_executor=self._use_executor)
        self._servers.add(server)
        self._model_counts[model_key] = self._model_counts.get(model_key, 0) + 1
        self._active_models.add(model_key)
        try:
            await server.serve_forever()
        finally:
            self._servers.discard(server)
            self._model_counts[model_key] -= 1
            if self._model_counts[model_key] <= 0:
                del self._model_counts[model_key]
                self._active_models.discard(model_key)
            await data.close()

    # -- shutdown ----------------------------------------------------------------

    async def drain(self, timeout_s: float = 5.0) -> None:
        """Graceful SIGTERM path: withdraw, finish in-flight work, stop."""
        self._stopping.set()
        # Leave the registry first so the placer stops choosing this worker.
        self.registry.withdraw(self.worker_id)
        await self._listener.close()
        if self._servers:
            await asyncio.gather(
                *(server.drain(timeout_s=timeout_s) for server in list(self._servers)),
                return_exceptions=True,
            )
        await self.stop()

    async def stop(self) -> None:
        """Hard stop: cancel everything and leave the registry."""
        self._stopping.set()
        self.registry.withdraw(self.worker_id)
        await self._listener.close()
        for server in list(self._servers):
            await server.stop()
        for task in (self._accept_task, self._heartbeat_task, *list(self._tasks)):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, RpcError):
                    pass
        self._accept_task = None
        self._heartbeat_task = None

    async def run_until_stopped(self) -> None:
        await self._stopping.wait()


async def _amain(args: argparse.Namespace) -> int:
    factories = load_factories(args.factories) if args.factories else None
    daemon = WorkerDaemon(
        worker_id=args.worker_id,
        cluster_dir=args.cluster_dir,
        factories=factories,
        host=args.host,
        port=args.port,
        ttl_s=args.ttl,
        shm_enabled=not args.no_shm,
    )
    await daemon.start()
    loop = asyncio.get_running_loop()
    drained = loop.create_future()

    def _on_sigterm() -> None:
        if not drained.done():
            drained.set_result(None)

    loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
    loop.add_signal_handler(signal.SIGINT, _on_sigterm)
    # The ready line is the spawner's synchronization point.
    print(f"WORKER_READY {daemon.worker_id} {daemon.port}", flush=True)
    await drained
    await daemon.drain(timeout_s=args.drain_timeout)
    print(f"WORKER_DRAINED {daemon.worker_id}", flush=True)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description="repro cluster worker daemon")
    parser.add_argument("--cluster-dir", required=True, help="shared registry dir")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--ttl", type=float, default=DEFAULT_TTL_S)
    parser.add_argument(
        "--factories", default="", help="pkg.module:ATTR factory map override"
    )
    parser.add_argument("--no-shm", action="store_true", help="disable the shm lane")
    parser.add_argument("--drain-timeout", type=float, default=5.0)
    args = parser.parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    sys.exit(main())
