"""Non-adaptive model-selection baselines.

The paper motivates online bandit selection by contrasting it with the two
ways practitioners pick a model today (§2.2):

* **Static selection** — pick once using offline evaluation on a stale
  dataset and never revisit the choice.  :class:`StaticSelection` scores all
  candidates on a validation set and pins the winner.
* **A/B testing** — split traffic between candidates and pick the winner
  once enough samples accumulate.  The paper notes this is statistically
  inefficient (data requirements grow with the number of candidates) and the
  resulting choice is still static.  :class:`ABTestingSelection` implements
  a classical fixed-allocation A/B test over the model set.

Both expose the same ``select``/``observe``/``current_choice`` surface so
the Figure 8 bench can replay the identical feedback stream through them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np


class StaticSelection:
    """Pins the model with the best offline validation accuracy."""

    def __init__(self, model_keys: Sequence[str]) -> None:
        if not model_keys:
            raise ValueError("model_keys must be non-empty")
        self.model_keys = list(model_keys)
        self._choice = self.model_keys[0]

    def fit_offline(self, validation_scores: Dict[str, float]) -> str:
        """Choose the model with the highest offline score; returns the choice."""
        missing = [key for key in self.model_keys if key not in validation_scores]
        if missing:
            raise ValueError(f"missing validation scores for {missing}")
        self._choice = max(self.model_keys, key=lambda key: validation_scores[key])
        return self._choice

    def select(self, x: Any = None) -> str:
        return self._choice

    def observe(self, model_key: str, loss: float) -> None:
        # Static by definition: online feedback is ignored.
        return None

    def current_choice(self) -> str:
        return self._choice


class ABTestingSelection:
    """Fixed-allocation A/B test over the candidate models.

    Traffic is split uniformly at random until each candidate has received
    ``min_samples_per_arm`` labelled outcomes; then the empirically best
    candidate takes all traffic.  No further adaptation occurs — exactly the
    failure mode the paper's Figure 8 experiment exposes when a model later
    degrades.
    """

    def __init__(
        self,
        model_keys: Sequence[str],
        min_samples_per_arm: int = 200,
        random_state: Optional[int] = 0,
    ) -> None:
        if not model_keys:
            raise ValueError("model_keys must be non-empty")
        if min_samples_per_arm < 1:
            raise ValueError("min_samples_per_arm must be >= 1")
        self.model_keys = list(model_keys)
        self.min_samples_per_arm = min_samples_per_arm
        self._rng = np.random.default_rng(random_state)
        self._losses: Dict[str, float] = {key: 0.0 for key in self.model_keys}
        self._counts: Dict[str, int] = {key: 0 for key in self.model_keys}
        self._winner: Optional[str] = None

    @property
    def experiment_complete(self) -> bool:
        return self._winner is not None

    def select(self, x: Any = None) -> str:
        if self._winner is not None:
            return self._winner
        # Uniformly randomise during the experiment phase.
        return self.model_keys[int(self._rng.integers(0, len(self.model_keys)))]

    def observe(self, model_key: str, loss: float) -> None:
        """Record one labelled outcome for the arm that served the query."""
        if model_key not in self._losses:
            raise ValueError(f"unknown model '{model_key}'")
        if self._winner is not None:
            return
        self._losses[model_key] += float(loss)
        self._counts[model_key] += 1
        if all(self._counts[key] >= self.min_samples_per_arm for key in self.model_keys):
            self._winner = min(
                self.model_keys,
                key=lambda key: self._losses[key] / max(self._counts[key], 1),
            )

    def current_choice(self) -> Optional[str]:
        return self._winner

    def mean_losses(self) -> Dict[str, float]:
        """Observed mean loss per arm (NaN for arms with no samples)."""
        return {
            key: (self._losses[key] / self._counts[key]) if self._counts[key] else float("nan")
            for key in self.model_keys
        }
