"""Baseline systems the paper compares against.

* :mod:`repro.baselines.tfserving` — a TensorFlow-Serving-like server:
  single model, tightly coupled (in-process, no RPC/serialization), static
  hand-tuned batch sizes with timeout-based dispatch (Figure 11).
* :mod:`repro.baselines.selection` — non-adaptive model-selection baselines:
  a static offline choice and classical A/B testing (§2.2's discussion of
  why A/B testing is statistically inefficient).
"""

from repro.baselines.tfserving import TFServingLikeServer
from repro.baselines.selection import ABTestingSelection, StaticSelection

__all__ = ["TFServingLikeServer", "StaticSelection", "ABTestingSelection"]
