"""A TensorFlow-Serving-like comparator (Figure 11, §6).

The paper characterises TensorFlow Serving by three design choices that
differ from Clipper:

1. **Tightly coupled**: the model runs in the same process as the serving
   frontend, so there is no container RPC or serialization overhead.
2. **Static batching**: batch sizes are hand-tuned offline and fixed; a
   purely timeout-based mechanism avoids starvation under light load, and
   there is no latency-SLO awareness.
3. **Single model**: no selection layer, no feedback, no ensembles.

:class:`TFServingLikeServer` implements exactly that: an asyncio server with
one model, one queue, one dispatcher using a fixed batch size and a dispatch
timeout, evaluating the model in-process.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.containers.base import ModelContainer
from repro.core.exceptions import ClipperError
from repro.core.metrics import MetricsRegistry, summarize_latencies


@dataclass
class _PendingItem:
    input: Any
    future: asyncio.Future
    enqueue_time: float = field(default_factory=time.monotonic)


class TFServingLikeServer:
    """Single-model serving with static batch sizes and timeout dispatch.

    Parameters
    ----------
    container:
        The model container evaluated in-process (call it directly — no RPC).
    batch_size:
        Static, hand-tuned batch size (the paper uses 512/128/16 for its
        MNIST/CIFAR/ImageNet TensorFlow models).
    batch_timeout_ms:
        Maximum time the dispatcher waits to fill a batch before sending a
        partial one (the starvation-avoidance timeout).
    use_executor:
        Evaluate batches in the default thread pool so the event loop stays
        responsive while the "GPU" is busy.
    """

    def __init__(
        self,
        container: ModelContainer,
        batch_size: int = 32,
        batch_timeout_ms: float = 2.0,
        use_executor: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_timeout_ms < 0:
            raise ValueError("batch_timeout_ms must be non-negative")
        self.container = container
        self.batch_size = batch_size
        self.batch_timeout_ms = batch_timeout_ms
        self.use_executor = use_executor
        self.metrics = MetricsRegistry()
        self._queue: "asyncio.Queue[_PendingItem]" = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._running = False

    async def start(self) -> None:
        """Start the batching dispatcher."""
        if not self._running:
            self._running = True
            self._task = asyncio.get_event_loop().create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop the dispatcher after the in-flight batch completes."""
        self._running = False
        if self._task is not None:
            try:
                await asyncio.wait_for(self._task, timeout=5.0)
            except asyncio.TimeoutError:
                self._task.cancel()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass
            self._task = None

    async def predict(self, x: Any) -> Any:
        """Render a prediction for one input."""
        if not self._running:
            raise ClipperError("TFServingLikeServer is not started")
        start = time.monotonic()
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        await self._queue.put(_PendingItem(input=x, future=future))
        output = await future
        latency_ms = (time.monotonic() - start) * 1000.0
        self.metrics.histogram("predict.latency_ms").observe(latency_ms)
        self.metrics.meter("predict.throughput").mark()
        return output

    async def _dispatch_loop(self) -> None:
        while self._running:
            batch = await self._collect_batch()
            if not batch:
                continue
            inputs = [item.input for item in batch]
            start = time.perf_counter()
            try:
                if self.use_executor:
                    loop = asyncio.get_event_loop()
                    outputs = await loop.run_in_executor(
                        None, self.container.predict_batch, inputs
                    )
                else:
                    outputs = self.container.predict_batch(inputs)
            except Exception as exc:  # keep serving on container failure
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            latency_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.histogram("batch.latency_ms").observe(latency_ms)
            self.metrics.histogram("batch.size").observe(len(batch))
            for item, output in zip(batch, outputs):
                if not item.future.done():
                    item.future.set_result(output)

    async def _collect_batch(self) -> List[_PendingItem]:
        """Fill a batch up to the static size, or dispatch on the timeout."""
        try:
            first = await asyncio.wait_for(self._queue.get(), timeout=0.05)
        except asyncio.TimeoutError:
            return []
        batch = [first]
        deadline = time.monotonic() + self.batch_timeout_ms / 1000.0
        while len(batch) < self.batch_size:
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                batch.append(item)
            except asyncio.TimeoutError:
                break
        return batch

    def latency_summary(self) -> Dict[str, float]:
        """Mean/percentile latency of served predictions (ms)."""
        return summarize_latencies(
            self.metrics.histogram("predict.latency_ms").values()
        )
