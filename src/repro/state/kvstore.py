"""In-memory key-value store with namespaces, TTLs and versioning.

The paper stores per-user / per-session selection-policy state in Redis
(§5.3).  This module provides the same role for the reproduction: a
thread-safe in-memory store with

* namespaced keys (``namespace, key`` pairs, like Redis key prefixes),
* optional per-entry time-to-live,
* a monotonically increasing version per entry enabling optimistic
  concurrency (``put_if_version``), and
* simple scan/keys operations for diagnostics.

Versions are drawn from one store-wide monotonic sequence, so a version
number is never reissued — not after a ``delete``, and not after a TTL
expiry.  That makes the compare-and-swap ABA-safe: a writer holding a
version observed before an entry expired (or was deleted) and re-created
can never win ``put_if_version`` against the re-created entry, because the
new entry necessarily carries a strictly larger version.

Values are stored by reference; callers that need isolation should store
copies (the selection-state manager stores small plain dicts).

Subclasses adding durability hook :meth:`KeyValueStore._on_commit`, which
is invoked under the store lock with a description of every applied
mutation (in apply order), giving a journal exactly as serialized as the
store itself — see :class:`repro.state.durable.DurableKeyValueStore`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exceptions import StateStoreError


@dataclass
class _Entry:
    value: Any
    version: int
    expires_at: Optional[float]

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class KeyValueStore:
    """Thread-safe namespaced in-memory key-value store."""

    def __init__(self, clock=time.monotonic) -> None:
        self._data: Dict[Tuple[str, str], _Entry] = {}
        self._lock = threading.Lock()
        self._clock = clock
        # Store-wide monotonic sequence: every mutation consumes one number,
        # and entry versions are the sequence value of their last write.
        self._seq = 0

    # -- journaling hook -------------------------------------------------------

    def _on_commit(
        self,
        op: str,
        seq: int,
        namespace: Optional[str],
        key: Optional[str],
        value: Any,
        ttl_remaining_s: Optional[float],
    ) -> None:
        """Called under the store lock after each applied mutation.

        ``op`` is ``"put"`` (covering both :meth:`put` and a successful
        :meth:`put_if_version`, with ``seq`` the entry's new version),
        ``"del"`` or ``"clear"`` (where ``namespace`` may be None for a
        full clear).  The base store journals nothing.
        """

    # -- basic operations ----------------------------------------------------

    def put(
        self, namespace: str, key: str, value: Any, ttl_s: Optional[float] = None
    ) -> int:
        """Store ``value``; returns the entry's new version number.

        Versions come from the store-wide monotonic sequence: they strictly
        increase per key but are not required to be contiguous.
        """
        self._validate(namespace, key)
        if ttl_s is not None and ttl_s <= 0:
            raise StateStoreError("ttl_s must be positive when provided")
        expires_at = None if ttl_s is None else self._clock() + ttl_s
        with self._lock:
            self._seq += 1
            version = self._seq
            self._data[(namespace, key)] = _Entry(value, version, expires_at)
            self._on_commit("put", version, namespace, key, value, ttl_s)
            return version

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Return the stored value, or ``default`` if absent or expired."""
        self._validate(namespace, key)
        with self._lock:
            entry = self._data.get((namespace, key))
            if entry is None:
                return default
            if entry.expired(self._clock()):
                del self._data[(namespace, key)]
                return default
            return entry.value

    def get_with_version(self, namespace: str, key: str) -> Tuple[Any, Optional[int]]:
        """Return ``(value, version)``; version is ``None`` when absent."""
        self._validate(namespace, key)
        with self._lock:
            entry = self._data.get((namespace, key))
            if entry is None or entry.expired(self._clock()):
                if entry is not None:
                    del self._data[(namespace, key)]
                return None, None
            return entry.value, entry.version

    def put_if_version(
        self, namespace: str, key: str, value: Any, expected_version: Optional[int]
    ) -> bool:
        """Optimistic update: store only if the current version matches.

        ``expected_version=None`` means "only insert if the key is absent".
        Returns True on success.  An entry that expired between the caller's
        :meth:`get_with_version` and this call counts as absent: a CAS
        against its stale version fails, and an insert (``None``) succeeds
        with a version strictly greater than any the key ever carried — the
        expiry can never be mistaken for "nothing changed".
        """
        self._validate(namespace, key)
        with self._lock:
            entry = self._data.get((namespace, key))
            if entry is not None and entry.expired(self._clock()):
                del self._data[(namespace, key)]
                entry = None
            current_version = None if entry is None else entry.version
            if current_version != expected_version:
                return False
            # A CAS update preserves the entry's remaining TTL; an insert
            # starts without one.
            expires_at = None if entry is None else entry.expires_at
            self._seq += 1
            version = self._seq
            self._data[(namespace, key)] = _Entry(value, version, expires_at)
            ttl_remaining = (
                None if expires_at is None else max(expires_at - self._clock(), 0.0)
            )
            self._on_commit("put", version, namespace, key, value, ttl_remaining)
            return True

    def delete(self, namespace: str, key: str) -> bool:
        """Remove a key; returns True when something was removed."""
        self._validate(namespace, key)
        with self._lock:
            removed = self._data.pop((namespace, key), None) is not None
            if removed:
                self._seq += 1
                self._on_commit("del", self._seq, namespace, key, None, None)
            return removed

    def contains(self, namespace: str, key: str) -> bool:
        sentinel = object()
        return self.get(namespace, key, sentinel) is not sentinel

    # -- scanning --------------------------------------------------------------

    def keys(self, namespace: str) -> List[str]:
        """All live keys in one namespace."""
        now = self._clock()
        with self._lock:
            expired = [k for k, e in self._data.items() if e.expired(now)]
            for k in expired:
                del self._data[k]
            return sorted(key for (ns, key) in self._data if ns == namespace)

    def namespaces(self) -> List[str]:
        with self._lock:
            return sorted({ns for (ns, _) in self._data})

    def size(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self, namespace: Optional[str] = None) -> None:
        """Remove everything, or only one namespace's entries."""
        with self._lock:
            if namespace is None:
                changed = bool(self._data)
                self._data.clear()
            else:
                doomed = [k for k in self._data if k[0] == namespace]
                changed = bool(doomed)
                for key in doomed:
                    del self._data[key]
            if changed:
                self._seq += 1
                self._on_commit("clear", self._seq, namespace, None, None, None)

    @staticmethod
    def _validate(namespace: str, key: str) -> None:
        if not namespace or not isinstance(namespace, str):
            raise StateStoreError("namespace must be a non-empty string")
        if not key or not isinstance(key, str):
            raise StateStoreError("key must be a non-empty string")
