"""Append-only, CRC-framed write-ahead log.

The durability tier's lowest layer: a :class:`WalWriter` appends opaque
payloads to a log file, each wrapped in a fixed frame::

    magic (2 bytes) | payload length (4 bytes BE) | crc32 (4 bytes BE) | payload

and :func:`read_records` replays them back, treating the first frame that
fails validation as the end of the log.  That is exactly the recovery
semantics a crash demands: a process killed mid-append leaves a torn or
truncated final frame, and the loader must drop it (and anything after it)
rather than refuse the whole log — the records before the tear were
acknowledged and must survive.  The loader reports what it dropped in a
:class:`WalRecovery` so callers can surface the repair instead of hiding it.

Durability is configurable per writer (``fsync`` policy):

``"always"``
    ``os.fsync`` after every append — an acknowledged write survives a
    machine crash, at the cost of one disk flush per mutation.
``"interval"``
    Flush to the OS on every append, ``fsync`` at most once per
    ``fsync_interval_s`` (piggybacked on appends).  A machine crash can
    lose up to one interval of acknowledged writes; a process crash loses
    nothing (the OS has the bytes).
``"never"``
    Flush to the OS only.  Survives process crashes (the ``kill -9`` case),
    not power loss.  The fastest policy, and sufficient for the
    crash-injection tests.

``fault_hook`` is the crash-injection seam: when set, every frame passes
through it before touching the file.  A hook may return a truncated frame
(simulating a torn write), raise, or simply ``os._exit`` — the chaos tests
use it to die at named byte offsets.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.exceptions import StateStoreError

#: Frame magic: lets the loader distinguish "torn tail" from "not a WAL".
MAGIC = b"WR"

_HEADER = struct.Struct(">2sII")  # magic, payload length, crc32

#: Refuse absurd lengths instead of attempting a multi-gigabyte read when a
#: corrupt length field happens to pass the magic check.
MAX_RECORD_BYTES = 64 * 1024 * 1024

FSYNC_POLICIES = ("always", "interval", "never")


@dataclass
class WalRecovery:
    """What :func:`read_records` found — and what it had to drop."""

    records: int = 0
    valid_bytes: int = 0
    dropped_bytes: int = 0
    truncated: bool = False
    reason: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "valid_bytes": self.valid_bytes,
            "dropped_bytes": self.dropped_bytes,
            "truncated": self.truncated,
            "reason": self.reason,
        }


def frame(payload: bytes) -> bytes:
    """Wrap one payload in the WAL frame (magic, length, CRC)."""
    if len(payload) > MAX_RECORD_BYTES:
        raise StateStoreError(
            f"WAL record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte limit"
        )
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def read_records(path: str) -> Tuple[List[bytes], WalRecovery]:
    """Replay every valid record of one log file, tolerating a torn tail.

    Validation walks frame by frame; the first frame whose magic, length,
    or CRC fails marks the end of the log.  Everything before it is
    returned, everything from it on is reported as dropped in the
    :class:`WalRecovery`.  A missing file is an empty log.
    """
    recovery = WalRecovery()
    records: List[bytes] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return records, recovery
    offset = 0
    total = len(data)
    while offset < total:
        header = data[offset: offset + _HEADER.size]
        if len(header) < _HEADER.size:
            recovery.truncated = True
            recovery.reason = "truncated frame header at tail"
            break
        magic, length, crc = _HEADER.unpack(header)
        if magic != MAGIC or length > MAX_RECORD_BYTES:
            recovery.truncated = True
            recovery.reason = f"invalid frame header at byte {offset}"
            break
        start = offset + _HEADER.size
        payload = data[start: start + length]
        if len(payload) < length:
            recovery.truncated = True
            recovery.reason = "torn record at tail"
            break
        if zlib.crc32(payload) != crc:
            recovery.truncated = True
            recovery.reason = f"CRC mismatch at byte {offset}"
            break
        records.append(payload)
        offset = start + length
        recovery.records += 1
        recovery.valid_bytes = offset
    recovery.dropped_bytes = total - recovery.valid_bytes
    return records, recovery


@dataclass
class WalWriter:
    """Appends framed records to one log file.

    Opens lazily in binary-append mode; callers serialize access (the
    durable store appends under its own lock).
    """

    path: str
    fsync: str = "always"
    fsync_interval_s: float = 0.05
    #: Crash-injection seam: maps the frame about to be written to the bytes
    #: actually written.  May raise or exit instead of returning.
    fault_hook: Optional[Callable[[bytes], bytes]] = None
    _handle: Optional[object] = field(default=None, repr=False)
    _last_fsync: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise StateStoreError(
                f"unknown fsync policy '{self.fsync}', "
                f"expected one of {sorted(FSYNC_POLICIES)}"
            )

    def _file(self):
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, payload: bytes) -> None:
        """Frame and append one record, honouring the fsync policy."""
        data = frame(payload)
        if self.fault_hook is not None:
            data = self.fault_hook(data)
        handle = self._file()
        handle.write(data)
        handle.flush()
        if self.fsync == "always":
            os.fsync(handle.fileno())
        elif self.fsync == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval_s:
                os.fsync(handle.fileno())
                self._last_fsync = now

    def sync(self) -> None:
        """Force everything written so far to disk."""
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    @property
    def size(self) -> int:
        """Bytes currently in the log file (0 when absent)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            self._handle.close()
        self._handle = None

    def reset(self) -> None:
        """Truncate the log to empty (used after a snapshot compacts it)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
