"""Externalized state storage (the reproduction's Redis stand-in)."""

from repro.state.kvstore import KeyValueStore

__all__ = ["KeyValueStore"]
