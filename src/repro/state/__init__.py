"""Externalized state storage (the reproduction's Redis stand-in).

:class:`KeyValueStore` is the in-memory default; :class:`DurableKeyValueStore`
is the WAL-backed drop-in for state that must survive a crash.
"""

from repro.state.durable import DurableKeyValueStore, StoreRecovery
from repro.state.kvstore import KeyValueStore
from repro.state.wal import WalRecovery, WalWriter, frame, read_records

__all__ = [
    "KeyValueStore",
    "DurableKeyValueStore",
    "StoreRecovery",
    "WalRecovery",
    "WalWriter",
    "frame",
    "read_records",
]
