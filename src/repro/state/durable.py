"""Durable key-value store: the in-memory store plus a write-ahead log.

:class:`DurableKeyValueStore` is a drop-in :class:`KeyValueStore` whose
every mutation is journaled to an append-only, CRC-framed WAL
(:mod:`repro.state.wal`) before the call returns, and which rebuilds its
full state — entries, versions, remaining TTLs, the CAS sequence — from
disk on construction.  The in-memory store stays the default everywhere;
this tier exists for state that must survive a crash: the management
plane's registry of applications, model versions, replica counts, traffic
splits and canary lifecycle, which is exactly what
:meth:`repro.management.frontend.ManagementFrontend.restore_application`
replays after a restart.

Layout (one directory per store)::

    <directory>/snapshot.json   # last compaction: full state at one seq
    <directory>/wal.log         # every mutation since that snapshot

Records carry the store-wide mutation sequence number, so replay after an
interrupted compaction is idempotent: records at or below the snapshot's
sequence are skipped.  TTLs are journaled as *remaining seconds plus a
wall-clock stamp* — the in-memory store measures expiry on a monotonic
clock that does not survive the process, so recovery re-derives the
remaining lifetime from wall-clock downtime and drops entries that expired
while the process was dead.

Values must be JSON-serializable (numpy scalars are unwrapped); a put of
an unserializable value raises :class:`StateStoreError` *before* touching
the in-memory state, so the store and its journal can never diverge.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.exceptions import StateStoreError
from repro.state.kvstore import KeyValueStore, _Entry
from repro.state.wal import WalRecovery, WalWriter, read_records

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.log"


def _json_default(value: Any) -> Any:
    # Unwrap numpy scalars (np.float64 etc.) without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item) and type(value).__module__ == "numpy":
        return item()
    raise TypeError(
        f"value of type {type(value).__name__} is not JSON-serializable"
    )


def _encode(record: Any) -> bytes:
    try:
        return json.dumps(
            record, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise StateStoreError(
            f"durable store requires JSON-serializable values: {exc}"
        ) from None


@dataclass
class StoreRecovery:
    """What one cold start found on disk (surfaced through health APIs)."""

    snapshot_entries: int = 0
    snapshot_seq: int = 0
    wal_records: int = 0
    replayed: int = 0
    skipped: int = 0
    expired_dropped: int = 0
    wal: WalRecovery = field(default_factory=WalRecovery)

    @property
    def clean(self) -> bool:
        """True when nothing had to be repaired (no torn tail)."""
        return not self.wal.truncated

    def to_dict(self) -> dict:
        return {
            "snapshot_entries": self.snapshot_entries,
            "snapshot_seq": self.snapshot_seq,
            "wal_records": self.wal_records,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "expired_dropped": self.expired_dropped,
            "clean": self.clean,
            "wal": self.wal.to_dict(),
        }


class DurableKeyValueStore(KeyValueStore):
    """A :class:`KeyValueStore` journaled to a write-ahead log.

    Parameters
    ----------
    directory:
        Home of the snapshot and WAL files; created when missing.  Opening
        a directory with existing files restores their state.
    fsync / fsync_interval_s:
        The WAL durability policy (see :mod:`repro.state.wal`).
    auto_compact_records:
        When set, a snapshot is taken (and the WAL truncated) automatically
        once this many records accumulate since the last compaction.
    wall_clock:
        Wall-clock source used to age TTLs across restarts (tests inject a
        fake; production leaves the default).
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
        auto_compact_records: Optional[int] = None,
        clock=time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        super().__init__(clock=clock)
        # Compaction can be triggered from inside the commit hook (which
        # runs under the store lock), so the lock must be reentrant.
        self._lock = threading.RLock()
        self.directory = directory
        self._wall = wall_clock
        self._auto_compact = auto_compact_records
        self._records_since_compact = 0
        os.makedirs(directory, exist_ok=True)
        self._snapshot_path = os.path.join(directory, SNAPSHOT_FILE)
        self._wal_path = os.path.join(directory, WAL_FILE)
        self.recovery = self._load()
        self.wal = WalWriter(
            self._wal_path, fsync=fsync, fsync_interval_s=fsync_interval_s
        )
        self._replaying = False

    # -- recovery --------------------------------------------------------------

    def _load(self) -> StoreRecovery:
        recovery = StoreRecovery()
        now_wall = self._wall()
        now_mono = self._clock()
        max_seq = 0

        if os.path.exists(self._snapshot_path):
            try:
                with open(self._snapshot_path, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError) as exc:
                # The snapshot is written via atomic rename, so a broken one
                # is not a crash artefact — refuse to silently drop state.
                raise StateStoreError(
                    f"corrupt snapshot at '{self._snapshot_path}': {exc}"
                ) from None
            recovery.snapshot_seq = int(snapshot.get("seq", 0))
            max_seq = recovery.snapshot_seq
            snap_wall = float(snapshot.get("wall", now_wall))
            for ns, key, value, version, ttl_remaining in snapshot.get("entries", []):
                recovery.snapshot_entries += 1
                max_seq = max(max_seq, int(version))
                expires_at = self._aged_deadline(
                    ttl_remaining, snap_wall, now_wall, now_mono
                )
                if ttl_remaining is not None and expires_at is None:
                    recovery.expired_dropped += 1
                    continue
                self._data[(ns, key)] = _Entry(value, int(version), expires_at)

        records, recovery.wal = read_records(self._wal_path)
        recovery.wal_records = len(records)
        if recovery.wal.truncated:
            # Repair the tail: cut the log back to its last valid frame so
            # new appends continue from there instead of hiding behind the
            # torn bytes (which would doom every later record on next load).
            with open(self._wal_path, "rb+") as handle:
                handle.truncate(recovery.wal.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        for raw in records:
            record = json.loads(raw.decode("utf-8"))
            seq = int(record["seq"])
            max_seq = max(max_seq, seq)
            if seq <= recovery.snapshot_seq:
                # A crash between snapshot rename and WAL truncation leaves
                # already-compacted records behind; replay stays idempotent.
                recovery.skipped += 1
                continue
            recovery.replayed += 1
            op = record["op"]
            if op == "put":
                expires_at = self._aged_deadline(
                    record.get("ttl"), record.get("wall", now_wall), now_wall, now_mono
                )
                if record.get("ttl") is not None and expires_at is None:
                    self._data.pop((record["ns"], record["key"]), None)
                    recovery.expired_dropped += 1
                    continue
                self._data[(record["ns"], record["key"])] = _Entry(
                    record["value"], seq, expires_at
                )
            elif op == "del":
                self._data.pop((record["ns"], record["key"]), None)
            elif op == "clear":
                ns = record.get("ns")
                if ns is None:
                    self._data.clear()
                else:
                    for doomed in [k for k in self._data if k[0] == ns]:
                        del self._data[doomed]
        self._seq = max_seq
        return recovery

    def _aged_deadline(
        self,
        ttl_remaining: Optional[float],
        written_wall: float,
        now_wall: float,
        now_mono: float,
    ) -> Optional[float]:
        """Monotonic expiry deadline for a journaled TTL, or None if dead."""
        if ttl_remaining is None:
            return None
        remaining = float(ttl_remaining) - (now_wall - float(written_wall))
        if remaining <= 0:
            return None
        return now_mono + remaining

    # -- journaling ------------------------------------------------------------

    def put(self, namespace, key, value, ttl_s=None):
        _encode(value)  # refuse unserializable values before mutating
        return super().put(namespace, key, value, ttl_s)

    def put_if_version(self, namespace, key, value, expected_version):
        _encode(value)
        return super().put_if_version(namespace, key, value, expected_version)

    def _on_commit(self, op, seq, namespace, key, value, ttl_remaining_s):
        record = {"op": op, "seq": seq, "ns": namespace}
        if op != "clear":
            record["key"] = key
        if op == "put":
            record["value"] = value
            if ttl_remaining_s is not None:
                record["ttl"] = ttl_remaining_s
                record["wall"] = self._wall()
        self.wal.append(_encode(record))
        self._records_since_compact += 1
        if (
            self._auto_compact is not None
            and self._records_since_compact >= self._auto_compact
        ):
            self.compact()

    # -- compaction ------------------------------------------------------------

    def compact(self) -> int:
        """Snapshot the full state and truncate the WAL; returns entry count.

        The snapshot lands via write-to-temp + fsync + atomic rename, then
        the WAL is truncated.  A crash between the two steps is safe: the
        leftover records carry sequence numbers at or below the snapshot's
        and are skipped on the next load.
        """
        with self._lock:
            now_mono = self._clock()
            entries: List[list] = []
            for (ns, key), entry in self._data.items():
                if entry.expired(now_mono):
                    continue
                ttl_remaining = (
                    None
                    if entry.expires_at is None
                    else max(entry.expires_at - now_mono, 0.0)
                )
                entries.append([ns, key, entry.value, entry.version, ttl_remaining])
            snapshot = {"seq": self._seq, "wall": self._wall(), "entries": entries}
            tmp_path = self._snapshot_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, separators=(",", ":"), default=_json_default)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._snapshot_path)
            self._sync_directory()
            self.wal.reset()
            self._records_since_compact = 0
            return len(entries)

    def _sync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is still atomic
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """Force journaled records to disk regardless of the fsync policy."""
        self.wal.sync()

    def close(self) -> None:
        """Flush and close the journal (the store stays readable)."""
        self.wal.close()

    def __enter__(self) -> "DurableKeyValueStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
