"""RPC transports: in-process queues and real TCP sockets.

A transport moves framed messages between Clipper (the client side) and a
model container (the server side).  Both sides see the same tiny interface —
``send(payload)`` / ``recv()`` / ``close()`` — so the serving engine is
agnostic to whether a container runs in the same process (the default, like
a co-located Docker container on the same host) or behind a socket.

The in-process transport still round-trips every message through the binary
serializer by default so that serialization overhead — part of what the
paper's Figure 11 "top bar" measures — is paid even without a socket.

Framing is copy-free on the send side: both transports encode through the
serializer's buffer-segment (writev-style) API.  ``TcpTransport`` writes the
4-byte header and the body segments with ``StreamWriter.writelines`` —
header and body are never concatenated into one ``bytes`` — and the
in-process transport passes the segment list through its queue
unconcatenated, joining lazily on the receive side only when the frame
actually spans multiple segments.  Decoded ndarrays are read-only zero-copy
views into the received frame.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional, Tuple

from repro.core.exceptions import RpcError
from repro.rpc.protocol import MAX_FRAME_BYTES
from repro.rpc.serialization import deserialize, serialize_buffers, serialized_nbytes


class Transport:
    """Abstract bidirectional message transport (one endpoint)."""

    async def send(self, payload: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    async def recv(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError

    async def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def closed(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class _QueueEndpoint(Transport):
    """One end of an in-process transport pair."""

    def __init__(
        self,
        outgoing: asyncio.Queue,
        incoming: asyncio.Queue,
        serialize_messages: bool,
    ) -> None:
        self._outgoing = outgoing
        self._incoming = incoming
        self._serialize = serialize_messages
        self._closed = False

    async def send(self, payload: dict) -> None:
        if self._closed:
            raise RpcError("transport is closed")
        # Serializing mode enqueues the encoder's segment list as-is: large
        # array payloads cross the queue as zero-copy views and are only
        # stitched together (if at all) by the receiver's decoder.
        message = serialize_buffers(payload) if self._serialize else payload
        await self._outgoing.put(message)

    async def recv(self) -> dict:
        if self._closed:
            raise RpcError("transport is closed")
        message = await self._incoming.get()
        if message is None:
            self._closed = True
            raise RpcError("transport closed by peer")
        if not self._serialize:
            return message
        data = message[0] if len(message) == 1 else b"".join(message)
        return deserialize(data)

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            # Wake up a peer blocked in recv().
            await self._outgoing.put(None)

    @property
    def closed(self) -> bool:
        return self._closed


class InProcessTransport:
    """A connected pair of in-process endpoints backed by asyncio queues.

    Parameters
    ----------
    serialize_messages:
        When true (default) messages are encoded/decoded with the binary
        serializer on every hop, charging realistic serialization cost.
    """

    def __init__(self, serialize_messages: bool = True) -> None:
        client_to_server: asyncio.Queue = asyncio.Queue()
        server_to_client: asyncio.Queue = asyncio.Queue()
        self.client_side: Transport = _QueueEndpoint(
            client_to_server, server_to_client, serialize_messages
        )
        self.server_side: Transport = _QueueEndpoint(
            server_to_client, client_to_server, serialize_messages
        )

    def endpoints(self) -> Tuple[Transport, Transport]:
        """Return the (client, server) endpoints."""
        return self.client_side, self.server_side


class TcpTransport(Transport):
    """Length-prefix framed transport over an asyncio TCP stream."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._closed = False

    @staticmethod
    async def connect(host: str, port: int) -> "TcpTransport":
        """Open a client connection to a listening container server."""
        reader, writer = await asyncio.open_connection(host, port)
        return TcpTransport(reader, writer)

    async def send(self, payload: dict) -> None:
        if self._closed:
            raise RpcError("transport is closed")
        body = serialize_buffers(payload)
        length = serialized_nbytes(body)
        if length > MAX_FRAME_BYTES:
            raise RpcError(f"frame of {length} bytes exceeds maximum")
        # writev-style: header and body segments go to the stream without
        # ever being concatenated into one frame-sized bytes object.
        self._writer.writelines([struct.pack("<I", length), *body])
        await self._writer.drain()

    async def recv(self) -> dict:
        if self._closed:
            raise RpcError("transport is closed")
        try:
            header = await self._reader.readexactly(4)
            (length,) = struct.unpack("<I", header)
            if length > MAX_FRAME_BYTES:
                raise RpcError(f"frame length {length} exceeds maximum")
            body = await self._reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            self._closed = True
            raise RpcError(f"connection closed while reading frame: {exc}") from exc
        return deserialize(body)

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @property
    def closed(self) -> bool:
        return self._closed


class TcpListener:
    """Helper that accepts container connections and hands out transports."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._accepted: asyncio.Queue = asyncio.Queue()

    async def start(self) -> None:
        """Begin listening; ``port`` is updated with the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._accepted.put(TcpTransport(reader, writer))

    async def accept(self) -> TcpTransport:
        """Wait for and return the next accepted connection."""
        if self._server is None:
            raise RpcError("listener is not started")
        return await self._accepted.get()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
