"""RPC message types and wire framing.

A message is a single serialized dict with a fixed envelope::

    {"type": <int>, "request_id": <int>, ...payload fields}

framed on the wire as a 4-byte little-endian length prefix followed by the
serialized bytes.  Three message types cover the container protocol:
``PREDICT`` (a batch of inputs), ``PREDICT_RESPONSE`` (a batch of outputs or
an error) and ``HEARTBEAT`` (liveness checks used by the container runtime).

Framing is copy-free on the encode side: :func:`encode_message_buffers`
returns the length prefix plus the serializer's buffer segments so a
gather-capable transport (``writev`` / ``StreamWriter.writelines``) never
materialises the frame as one ``bytes``.  Homogeneous ndarray batches inside
the payload use the columnar ``NDARRAY_BATCH`` encoding (one dtype/shape
header for the whole batch — see :mod:`repro.rpc.serialization`);
heterogeneous batches fall back to the per-element tagged format.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.exceptions import SerializationError
from repro.rpc.serialization import (
    deserialize,
    serialize,
    serialize_buffers,
    serialized_nbytes,
)

#: Maximum frame size accepted by the decoder (guards against corrupt prefixes).
MAX_FRAME_BYTES = 256 * 1024 * 1024


class MessageType(enum.IntEnum):
    """Wire message discriminator."""

    PREDICT = 1
    PREDICT_RESPONSE = 2
    HEARTBEAT = 3
    HEARTBEAT_RESPONSE = 4


@dataclass
class RpcRequest:
    """A batch prediction request sent from Clipper to one container replica."""

    request_id: int
    model_name: str
    inputs: List[Any]
    metadata: dict = field(default_factory=dict)
    #: Trace ids of the traced queries in this batch (empty when untraced).
    #: Optional header field: omitted from the wire payload when empty, so
    #: untraced batches pay zero extra bytes.
    trace: tuple = ()
    #: Absolute ``time.monotonic()`` deadlines aligned with ``inputs``
    #: (0.0 = no deadline for that entry).  Optional header field like
    #: ``trace``: omitted from the wire when no entry carries a deadline, so
    #: deadline-free batches pay zero extra bytes.  Lets the container skip
    #: evaluating entries whose deadline already passed in transit.
    deadlines: tuple = ()

    def to_payload(self) -> dict:
        # ``inputs`` is shared, not copied: receivers copy in from_payload,
        # so the in-process pass-through transport stays aliasing-safe.
        payload = {
            "type": int(MessageType.PREDICT),
            "request_id": self.request_id,
            "model_name": self.model_name,
            "inputs": self.inputs,
            "metadata": self.metadata,
        }
        if self.trace:
            payload["trace"] = list(self.trace)
        if self.deadlines:
            payload["deadlines"] = list(self.deadlines)
        return payload

    @staticmethod
    def from_payload(payload: dict) -> "RpcRequest":
        return RpcRequest(
            request_id=int(payload["request_id"]),
            model_name=str(payload["model_name"]),
            inputs=list(payload["inputs"]),
            metadata=dict(payload.get("metadata", {})),
            trace=tuple(payload.get("trace", ())),
            deadlines=tuple(payload.get("deadlines", ())),
        )


@dataclass
class RpcResponse:
    """A batch prediction response (outputs aligned with the request inputs)."""

    request_id: int
    outputs: List[Any]
    error: Optional[str] = None
    container_latency_ms: float = 0.0
    #: Echo of the request's trace header plus the container's monotonic
    #: evaluation window; only present on the wire for traced batches.
    trace: tuple = ()
    eval_start: float = 0.0
    eval_end: float = 0.0
    #: Request indices the container declined to evaluate because their
    #: deadline had already expired on arrival.  ``outputs`` holds results
    #: for the remaining indices in order; omitted from the wire when empty.
    skipped: tuple = ()

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_payload(self) -> dict:
        payload = {
            "type": int(MessageType.PREDICT_RESPONSE),
            "request_id": self.request_id,
            "outputs": self.outputs,
            "error": self.error,
            "container_latency_ms": float(self.container_latency_ms),
        }
        if self.trace:
            payload["trace"] = list(self.trace)
        if self.eval_end:
            payload["eval_start"] = float(self.eval_start)
            payload["eval_end"] = float(self.eval_end)
        if self.skipped:
            payload["skipped"] = list(self.skipped)
        return payload

    @staticmethod
    def from_payload(payload: dict) -> "RpcResponse":
        return RpcResponse(
            request_id=int(payload["request_id"]),
            outputs=list(payload.get("outputs", [])),
            error=payload.get("error"),
            container_latency_ms=float(payload.get("container_latency_ms", 0.0)),
            trace=tuple(payload.get("trace", ())),
            eval_start=float(payload.get("eval_start", 0.0)),
            eval_end=float(payload.get("eval_end", 0.0)),
            skipped=tuple(payload.get("skipped", ())),
        )


def encode_message_buffers(payload: dict) -> List[Any]:
    """Serialize a payload dict as framed buffer segments (writev-style).

    The first segment is the 4-byte length prefix; the rest are the
    serializer's segments, which may alias the payload's arrays — consume
    them (write or join) before mutating those arrays.  Joining all segments
    yields exactly :func:`encode_message`'s output.
    """
    body = serialize_buffers(payload)
    length = serialized_nbytes(body)
    if length > MAX_FRAME_BYTES:
        raise SerializationError(f"frame of {length} bytes exceeds maximum")
    return [struct.pack("<I", length), *body]


def encode_message(payload: dict) -> bytes:
    """Serialize a payload dict and prepend the 4-byte length prefix."""
    return b"".join(encode_message_buffers(payload))


def decode_message(data: bytes) -> Tuple[dict, bytes]:
    """Decode one framed message from ``data``.

    Returns the payload dict and any remaining unconsumed bytes.  Raises
    :class:`SerializationError` when fewer bytes than one whole frame are
    available, so stream readers can accumulate and retry.  Decoded ndarrays
    are read-only zero-copy views into ``data``.
    """
    if len(data) < 4:
        raise SerializationError("incomplete frame header")
    (length,) = struct.unpack_from("<I", data, 0)
    if length > MAX_FRAME_BYTES:
        raise SerializationError(f"frame length {length} exceeds maximum")
    if len(data) < 4 + length:
        raise SerializationError("incomplete frame body")
    payload = deserialize(memoryview(data)[4 : 4 + length])
    if not isinstance(payload, dict) or "type" not in payload:
        raise SerializationError("frame payload is not a valid message envelope")
    return payload, data[4 + length :]


def message_type(payload: dict) -> MessageType:
    """Return the :class:`MessageType` of a decoded payload."""
    try:
        return MessageType(int(payload["type"]))
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"invalid message type: {exc}") from exc
