"""Binary serialization for RPC payloads.

The format is a small, self-describing tagged binary encoding built on
``struct``: it supports the value types that flow across the
Clipper-to-container boundary — numpy arrays (the common case), Python
scalars, strings, bytes, lists/tuples and dicts.  It deliberately avoids
``pickle`` so that the wire format is language-neutral in spirit, matching
the paper's cross-language RPC goal, and so that deserialization of
untrusted bytes cannot execute code.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

import numpy as np

from repro.core.exceptions import SerializationError

# One-byte type tags.
_TAG_NONE = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_BOOL = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_LIST = 6
_TAG_DICT = 7
_TAG_NDARRAY = 8

_MAX_DEPTH = 32


def serialize(value: Any) -> bytes:
    """Encode ``value`` into the tagged binary format."""
    out = bytearray()
    _encode(value, out, depth=0)
    return bytes(out)


def deserialize(data: bytes) -> Any:
    """Decode a value previously produced by :func:`serialize`."""
    value, offset = _decode(memoryview(data), 0, depth=0)
    if offset != len(data):
        raise SerializationError(
            f"trailing bytes after decoded value: {len(data) - offset} left"
        )
    return value


def _encode(value: Any, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise SerializationError("value nesting exceeds maximum depth")
    if value is None:
        out.append(_TAG_NONE)
    elif isinstance(value, bool):
        # bool must be checked before int: bool is a subclass of int.
        out.append(_TAG_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, np.integer)):
        out.append(_TAG_INT)
        out.extend(struct.pack("<q", int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        out.extend(struct.pack("<I", len(encoded)))
        out.extend(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out.extend(struct.pack("<I", len(value)))
        out.extend(value)
    elif isinstance(value, np.ndarray):
        _encode_ndarray(value, out)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out.extend(struct.pack("<I", len(value)))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out.extend(struct.pack("<I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError("dict keys must be strings")
            _encode(key, out, depth + 1)
            _encode(item, out, depth + 1)
    else:
        raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def _encode_ndarray(array: np.ndarray, out: bytearray) -> None:
    if array.dtype.hasobject:
        raise SerializationError("object-dtype arrays are not serializable")
    contiguous = np.ascontiguousarray(array)
    dtype_name = contiguous.dtype.str.encode("ascii")
    out.append(_TAG_NDARRAY)
    out.extend(struct.pack("<B", len(dtype_name)))
    out.extend(dtype_name)
    out.extend(struct.pack("<B", contiguous.ndim))
    for dim in contiguous.shape:
        out.extend(struct.pack("<q", dim))
    raw = contiguous.tobytes()
    out.extend(struct.pack("<Q", len(raw)))
    out.extend(raw)


def _decode(view: memoryview, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise SerializationError("value nesting exceeds maximum depth")
    if offset >= len(view):
        raise SerializationError("unexpected end of buffer")
    tag = view[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        return bool(view[offset]), offset + 1
    if tag == _TAG_INT:
        (value,) = struct.unpack_from("<q", view, offset)
        return int(value), offset + 8
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from("<d", view, offset)
        return float(value), offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        raw = bytes(view[offset : offset + length])
        if len(raw) != length:
            raise SerializationError("truncated string payload")
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        raw = bytes(view[offset : offset + length])
        if len(raw) != length:
            raise SerializationError("truncated bytes payload")
        return raw, offset + length
    if tag == _TAG_LIST:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode(view, offset, depth + 1)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        result = {}
        for _ in range(length):
            key, offset = _decode(view, offset, depth + 1)
            value, offset = _decode(view, offset, depth + 1)
            result[key] = value
        return result, offset
    if tag == _TAG_NDARRAY:
        return _decode_ndarray(view, offset)
    raise SerializationError(f"unknown type tag {tag}")


def _decode_ndarray(view: memoryview, offset: int) -> Tuple[np.ndarray, int]:
    (dtype_len,) = struct.unpack_from("<B", view, offset)
    offset += 1
    dtype_name = bytes(view[offset : offset + dtype_len]).decode("ascii")
    offset += dtype_len
    (ndim,) = struct.unpack_from("<B", view, offset)
    offset += 1
    shape = []
    for _ in range(ndim):
        (dim,) = struct.unpack_from("<q", view, offset)
        shape.append(int(dim))
        offset += 8
    (nbytes,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    raw = bytes(view[offset : offset + nbytes])
    if len(raw) != nbytes:
        raise SerializationError("truncated ndarray payload")
    try:
        array = np.frombuffer(raw, dtype=np.dtype(dtype_name)).reshape(shape)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid ndarray payload: {exc}") from exc
    return array.copy(), offset + nbytes
