"""Binary serialization for RPC payloads.

The format is a small, self-describing tagged binary encoding built on
``struct``: it supports the value types that flow across the
Clipper-to-container boundary — numpy arrays (the common case), Python
scalars, strings, bytes, lists/tuples and dicts.  It deliberately avoids
``pickle`` so that the wire format is language-neutral in spirit, matching
the paper's cross-language RPC goal, and so that deserialization of
untrusted bytes cannot execute code.

Columnar batches
----------------
A *homogeneous* list of ndarrays — every element the same dtype and shape,
which is what a prediction batch looks like on the wire — is encoded as one
``NDARRAY_BATCH`` frame: a single dtype/shape header followed by the
elements' raw bytes back to back (equivalent to ``np.stack``'s buffer),
instead of ``N`` individually tagged arrays each carrying its own header.
Heterogeneous lists transparently fall back to the tagged ``LIST`` encoding,
so every value the tagged format could represent still round-trips.

The ``NDARRAY_BATCH`` frame layout is::

    u8   tag (9)
    u8   len(dtype)   dtype string, ascii (numpy ``dtype.str``, e.g. "<f4")
    u8   ndim         element ndim (>= 1)
    i64  × ndim       element shape
    u32  count        number of elements in the batch
    u64  nbytes       total payload size (count × element nbytes)
    raw  payload      elements' contiguous bytes, concatenated

Zero-copy
---------
Both directions avoid materialising intermediate ``bytes``:

* **Encode** — :func:`serialize_buffers` returns a *list* of buffer segments
  (small control bytes interleaved with ``memoryview`` s of the original
  array payloads) suitable for ``writev``-style transports; large array
  payloads are never copied into the frame.  :func:`serialize` remains the
  join-to-one-``bytes`` convenience.  The returned views alias the caller's
  arrays, so they must be consumed (written or joined) before those arrays
  are mutated.
* **Decode** — ndarray payloads are returned as **read-only**
  ``np.frombuffer`` views into the received frame (no ``bytes()`` slice, no
  ``array.copy()``).  Callers that need to mutate a decoded array copy it
  explicitly (`array.copy()`); everyone else reads it in place.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import SerializationError

#: Media type under which this format travels over HTTP (the REST edge's
#: binary lane and the client SDK negotiate it via ``Content-Type``/
#: ``Accept``).  Defined here — next to the format itself — so the client
#: SDK can name the format without importing the serving engine's API layer.
COLUMNAR_CONTENT_TYPE = "application/x-clipper-columnar"

# One-byte type tags.
_TAG_NONE = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_BOOL = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_LIST = 6
_TAG_DICT = 7
_TAG_NDARRAY = 8
_TAG_NDARRAY_BATCH = 9

_MAX_DEPTH = 32

#: Payloads smaller than this are copied inline into the control buffer;
#: larger ones are emitted as standalone zero-copy segments.  Tiny segments
#: would make writev-style sends slower than one small copy.
_INLINE_PAYLOAD_MAX = 512


class _BufferWriter:
    """Accumulates an encoded frame as a list of buffer segments.

    Control bytes (tags, lengths, headers, small payloads) append to a
    ``bytearray`` scratch segment; large payloads are spliced in as
    zero-copy read-only memoryviews of the caller's data.
    """

    __slots__ = ("_segments", "_scratch")

    def __init__(self) -> None:
        self._segments: List[Any] = []
        self._scratch = bytearray()

    # bytearray-compatible surface used by the encoder for control bytes.
    def append(self, byte: int) -> None:
        self._scratch.append(byte)

    def extend(self, data) -> None:
        self._scratch.extend(data)

    def payload(self, buffer) -> None:
        """Splice in one payload segment without copying it."""
        view = memoryview(buffer)
        if view.nbytes == 0:
            return
        if view.nbytes < _INLINE_PAYLOAD_MAX:
            self._scratch.extend(view.cast("B"))
            return
        if self._scratch:
            self._segments.append(self._scratch)
            self._scratch = bytearray()
        self._segments.append(view.cast("B").toreadonly())

    def buffers(self) -> List[Any]:
        if self._scratch:
            self._segments.append(self._scratch)
            self._scratch = bytearray()
        return self._segments


def serialize(value: Any) -> bytes:
    """Encode ``value`` into one contiguous tagged-binary frame."""
    return b"".join(serialize_buffers(value))


def serialize_buffers(value: Any) -> List[Any]:
    """Encode ``value`` as a list of buffer segments (writev-style).

    Joining the segments yields exactly :func:`serialize`'s output, but a
    gather-capable transport can write them without ever materialising the
    frame.  Large ndarray/bytes payload segments are read-only views of the
    caller's data — consume them before mutating the originals.
    """
    writer = _BufferWriter()
    _encode(value, writer, depth=0)
    return writer.buffers()


def serialized_nbytes(buffers: List[Any]) -> int:
    """Total size in bytes of a :func:`serialize_buffers` segment list."""
    return sum(len(segment) for segment in buffers)


def deserialize(data) -> Any:
    """Decode a value previously produced by :func:`serialize`.

    ``data`` may be any contiguous bytes-like object (``bytes``,
    ``bytearray``, ``memoryview``).  Decoded ndarrays are read-only views
    into ``data`` — they keep it alive and copy only on demand.
    """
    view = memoryview(data)
    if view.format != "B":
        view = view.cast("B")
    try:
        value, offset = _decode(view, 0, depth=0)
    except struct.error as exc:
        raise SerializationError(f"truncated or corrupt frame: {exc}") from exc
    if offset != len(view):
        raise SerializationError(
            f"trailing bytes after decoded value: {len(view) - offset} left"
        )
    return value


def _encode(value: Any, out: _BufferWriter, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise SerializationError("value nesting exceeds maximum depth")
    if value is None:
        out.append(_TAG_NONE)
    elif isinstance(value, bool):
        # bool must be checked before int: bool is a subclass of int.
        out.append(_TAG_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, np.integer)):
        out.append(_TAG_INT)
        out.extend(struct.pack("<q", int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        out.extend(struct.pack("<I", len(encoded)))
        out.payload(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out.extend(struct.pack("<I", len(value)))
        out.payload(value)
    elif isinstance(value, np.ndarray):
        _encode_ndarray(value, out)
    elif isinstance(value, (list, tuple)):
        batch_shape = _homogeneous_batch_shape(value)
        if batch_shape is not None:
            _encode_ndarray_batch(value, out)
        else:
            out.append(_TAG_LIST)
            out.extend(struct.pack("<I", len(value)))
            for item in value:
                _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out.extend(struct.pack("<I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError("dict keys must be strings")
            _encode(key, out, depth + 1)
            _encode(item, out, depth + 1)
    else:
        raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def _homogeneous_batch_shape(items) -> Optional[Tuple[Any, tuple]]:
    """The shared (dtype, shape) when ``items`` is a columnar-eligible batch.

    Eligible means: at least two elements, every element an ndarray of one
    dtype and one shape, ``ndim >= 1`` (0-d arrays keep their per-element
    tagged round-trip) and not an object dtype.  Anything else returns None
    and falls back to the tagged LIST encoding.
    """
    if len(items) < 2:
        return None
    first = items[0]
    if not isinstance(first, np.ndarray) or first.ndim == 0 or first.dtype.hasobject:
        return None
    dtype = first.dtype
    shape = first.shape
    for item in items:
        if not isinstance(item, np.ndarray) or item.dtype != dtype or item.shape != shape:
            return None
    return dtype, shape


def _encode_ndarray_header(tag: int, dtype: np.dtype, shape: tuple, out: _BufferWriter) -> None:
    dtype_name = dtype.str.encode("ascii")
    out.append(tag)
    out.extend(struct.pack("<B", len(dtype_name)))
    out.extend(dtype_name)
    out.extend(struct.pack("<B", len(shape)))
    for dim in shape:
        out.extend(struct.pack("<q", dim))


def _encode_ndarray(array: np.ndarray, out: _BufferWriter) -> None:
    if array.dtype.hasobject:
        raise SerializationError("object-dtype arrays are not serializable")
    contiguous = np.ascontiguousarray(array)
    _encode_ndarray_header(_TAG_NDARRAY, contiguous.dtype, contiguous.shape, out)
    out.extend(struct.pack("<Q", contiguous.nbytes))
    out.payload(contiguous)


def _encode_ndarray_batch(arrays, out: _BufferWriter) -> None:
    first = arrays[0]
    _encode_ndarray_header(_TAG_NDARRAY_BATCH, first.dtype, first.shape, out)
    elem_nbytes = first.dtype.itemsize * first.size
    out.extend(struct.pack("<I", len(arrays)))
    out.extend(struct.pack("<Q", elem_nbytes * len(arrays)))
    for array in arrays:
        contiguous = array if array.flags.c_contiguous else np.ascontiguousarray(array)
        out.payload(contiguous)


def _decode(view: memoryview, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise SerializationError("value nesting exceeds maximum depth")
    if offset >= len(view):
        raise SerializationError("unexpected end of buffer")
    tag = view[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        if offset >= len(view):
            raise SerializationError("truncated bool payload")
        return bool(view[offset]), offset + 1
    if tag == _TAG_INT:
        (value,) = struct.unpack_from("<q", view, offset)
        return int(value), offset + 8
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from("<d", view, offset)
        return float(value), offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        end = offset + length
        if end > len(view):
            raise SerializationError("truncated string payload")
        # Decode straight from the bounds-checked view slice: no
        # intermediate bytes() materialisation.
        return str(view[offset:end], "utf-8"), end
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        end = offset + length
        if end > len(view):
            raise SerializationError("truncated bytes payload")
        return bytes(view[offset:end]), end
    if tag == _TAG_LIST:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode(view, offset, depth + 1)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        result = {}
        for _ in range(length):
            key, offset = _decode(view, offset, depth + 1)
            value, offset = _decode(view, offset, depth + 1)
            result[key] = value
        return result, offset
    if tag == _TAG_NDARRAY:
        return _decode_ndarray(view, offset)
    if tag == _TAG_NDARRAY_BATCH:
        return _decode_ndarray_batch(view, offset)
    raise SerializationError(f"unknown type tag {tag}")


def _decode_ndarray_header(view: memoryview, offset: int) -> Tuple[str, list, int]:
    if offset >= len(view):
        raise SerializationError("truncated ndarray header")
    (dtype_len,) = struct.unpack_from("<B", view, offset)
    offset += 1
    if offset + dtype_len > len(view):
        raise SerializationError("truncated ndarray header")
    dtype_name = str(view[offset : offset + dtype_len], "ascii")
    offset += dtype_len
    (ndim,) = struct.unpack_from("<B", view, offset)
    offset += 1
    if offset + 8 * ndim > len(view):
        raise SerializationError("truncated ndarray header")
    shape = []
    for _ in range(ndim):
        (dim,) = struct.unpack_from("<q", view, offset)
        shape.append(int(dim))
        offset += 8
    return dtype_name, shape, offset


def _ndarray_view(payload: memoryview, dtype_name: str, shape) -> np.ndarray:
    """A read-only ndarray view over ``payload`` (zero-copy)."""
    try:
        array = np.frombuffer(payload, dtype=np.dtype(dtype_name)).reshape(shape)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid ndarray payload: {exc}") from exc
    array.flags.writeable = False
    return array


def _decode_ndarray(view: memoryview, offset: int) -> Tuple[np.ndarray, int]:
    dtype_name, shape, offset = _decode_ndarray_header(view, offset)
    (nbytes,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    end = offset + nbytes
    if end > len(view):
        raise SerializationError("truncated ndarray payload")
    return _ndarray_view(view[offset:end], dtype_name, shape), end


def _decode_ndarray_batch(view: memoryview, offset: int) -> Tuple[List[np.ndarray], int]:
    dtype_name, shape, offset = _decode_ndarray_header(view, offset)
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    (nbytes,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    end = offset + nbytes
    if end > len(view):
        raise SerializationError("truncated ndarray batch payload")
    batch = _ndarray_view(view[offset:end], dtype_name, [count, *shape])
    # Rows of the read-only (count, *shape) view: each element aliases the
    # frame, no per-element copies.
    return list(batch), end
