"""Container-side RPC server: receives batches, evaluates the model, replies."""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.core.exceptions import RpcError
from repro.rpc.protocol import MessageType, RpcRequest, RpcResponse, message_type
from repro.rpc.transport import Transport


class ContainerRpcServer:
    """Serves one model container over one transport.

    The server loop mirrors the paper's container runtime: it blocks on the
    next framed request, evaluates the container's ``predict_batch`` on the
    decoded inputs (optionally in a thread-pool executor so CPU-heavy models
    don't stall the event loop), and replies with the aligned outputs and the
    measured container-side latency.
    """

    def __init__(
        self,
        container,
        transport: Transport,
        use_executor: bool = False,
    ) -> None:
        self._container = container
        self._transport = transport
        self._use_executor = use_executor
        self._task: Optional[asyncio.Task] = None
        self.requests_served = 0

    def start(self) -> asyncio.Task:
        """Start the serving loop as a background task."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_event_loop().create_task(self.serve_forever())
        return self._task

    async def serve_forever(self) -> None:
        """Process requests until the transport closes."""
        while True:
            try:
                payload = await self._transport.recv()
            except RpcError:
                return
            kind = message_type(payload)
            if kind == MessageType.HEARTBEAT:
                # The heartbeat reply doubles as a health probe: it carries
                # the container's own liveness verdict so the management
                # plane's HealthMonitor can distinguish "transport is up but
                # the model is sick" from plain transport liveness.
                try:
                    healthy = bool(self._container.healthy())
                except Exception:
                    healthy = False
                await self._transport.send(
                    {
                        "type": int(MessageType.HEARTBEAT_RESPONSE),
                        "request_id": int(payload["request_id"]),
                        "healthy": healthy,
                    }
                )
                continue
            if kind != MessageType.PREDICT:
                continue
            request = RpcRequest.from_payload(payload)
            response = await self._evaluate(request)
            try:
                await self._transport.send(response.to_payload())
            except RpcError:
                return

    async def _evaluate(self, request: RpcRequest) -> RpcResponse:
        start = time.perf_counter()
        try:
            if self._use_executor:
                loop = asyncio.get_event_loop()
                outputs = await loop.run_in_executor(
                    None, self._container.predict_batch, request.inputs
                )
            else:
                outputs = self._container.predict_batch(request.inputs)
            latency_ms = (time.perf_counter() - start) * 1000.0
            self.requests_served += 1
            return RpcResponse(
                request_id=request.request_id,
                outputs=list(outputs),
                container_latency_ms=latency_ms,
            )
        except Exception as exc:  # container failures must not kill the server
            latency_ms = (time.perf_counter() - start) * 1000.0
            return RpcResponse(
                request_id=request.request_id,
                outputs=[],
                error=f"{type(exc).__name__}: {exc}",
                container_latency_ms=latency_ms,
            )

    async def stop(self) -> None:
        """Close the transport and cancel the serving loop."""
        await self._transport.close()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, RpcError):
                pass
            self._task = None
