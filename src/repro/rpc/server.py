"""Container-side RPC server: receives batches, evaluates the model, replies."""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.core.exceptions import RpcError
from repro.rpc.protocol import MessageType, RpcRequest, RpcResponse, message_type
from repro.rpc.transport import Transport


class ContainerRpcServer:
    """Serves one model container over one transport.

    The server loop mirrors the paper's container runtime: it blocks on the
    next framed request, evaluates the container's ``predict_batch`` on the
    decoded inputs (optionally in a thread-pool executor so CPU-heavy models
    don't stall the event loop), and replies with the aligned outputs and the
    measured container-side latency.

    The loop is *pipelined* on the receive side: while a batch evaluates,
    the next frame is already being received and decoded in a prefetch task,
    so a pipelining client (window > 1) overlaps its encode/send of batch
    ``k+1`` with the container's evaluation of batch ``k``.  Evaluation
    itself stays strictly serial and in arrival order — containers are
    single-threaded, and in-order responses are what lets the client map
    results back to request ids cheaply.
    """

    def __init__(
        self,
        container,
        transport: Transport,
        use_executor: bool = False,
    ) -> None:
        self._container = container
        self._transport = transport
        self._use_executor = use_executor
        self._task: Optional[asyncio.Task] = None
        self.requests_served = 0
        self._draining = False
        # Set whenever no request is mid-evaluation; drain() waits on it.
        self._idle = asyncio.Event()
        self._idle.set()

    def start(self) -> asyncio.Task:
        """Start the serving loop as a background task."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_event_loop().create_task(self.serve_forever())
        return self._task

    async def serve_forever(self) -> None:
        """Process requests until the transport closes."""
        loop = asyncio.get_running_loop()
        prefetch = loop.create_task(self._transport.recv())
        try:
            while True:
                try:
                    payload = await prefetch
                except RpcError:
                    return
                if self._draining:
                    # Stop accepting: the prefetched frame arrived after the
                    # drain began and is deliberately dropped unanswered.
                    return
                # Prefetch the next frame immediately: its receive + decode
                # overlaps the evaluation below instead of following it.
                prefetch = loop.create_task(self._transport.recv())
                self._idle.clear()
                try:
                    await self._handle(payload)
                except RpcError:
                    # Failed to send a reply: the peer is gone.
                    return
                finally:
                    self._idle.set()
                if self._draining:
                    return
        finally:
            prefetch.cancel()
            try:
                await prefetch
            except (asyncio.CancelledError, RpcError):
                pass

    async def _handle(self, payload: dict) -> None:
        """Answer one decoded message (heartbeat or predict)."""
        kind = message_type(payload)
        if kind == MessageType.HEARTBEAT:
            # The heartbeat reply doubles as a health probe: it carries
            # the container's own liveness verdict so the management
            # plane's HealthMonitor can distinguish "transport is up but
            # the model is sick" from plain transport liveness.
            try:
                healthy = bool(self._container.healthy())
            except Exception:
                healthy = False
            await self._transport.send(
                {
                    "type": int(MessageType.HEARTBEAT_RESPONSE),
                    "request_id": int(payload["request_id"]),
                    "healthy": healthy,
                }
            )
            return
        if kind != MessageType.PREDICT:
            return
        request = RpcRequest.from_payload(payload)
        response = await self._evaluate(request)
        await self._transport.send(response.to_payload())

    async def _evaluate(self, request: RpcRequest) -> RpcResponse:
        # Traced batches additionally get monotonic eval stamps: same-host
        # dispatchers turn them into a ``container.eval`` span nested inside
        # the client's ``rpc.wait`` leg.  Untraced batches skip the stamps
        # (and the wire bytes) entirely.
        traced = bool(request.trace)
        eval_start = time.monotonic() if traced else 0.0
        start = time.perf_counter()
        inputs = request.inputs
        skipped: tuple = ()
        if request.deadlines:
            # Deadline propagation: entries whose absolute deadline already
            # passed in transit are answered as ``skipped`` instead of
            # computing results nobody is waiting for.  A fully-expired
            # batch skips the container call entirely.
            now = time.monotonic()
            expired = [
                i
                for i, deadline in enumerate(request.deadlines[: len(inputs)])
                if deadline and deadline <= now
            ]
            if expired:
                skipped = tuple(expired)
                expired_set = set(expired)
                inputs = [x for i, x in enumerate(inputs) if i not in expired_set]
        try:
            if not inputs:
                outputs: list = []
            elif self._use_executor:
                loop = asyncio.get_event_loop()
                outputs = list(
                    await loop.run_in_executor(
                        None, self._container.predict_batch, inputs
                    )
                )
            else:
                outputs = list(self._container.predict_batch(inputs))
            latency_ms = (time.perf_counter() - start) * 1000.0
            self.requests_served += 1
            return RpcResponse(
                request_id=request.request_id,
                outputs=outputs,
                container_latency_ms=latency_ms,
                trace=request.trace,
                eval_start=eval_start,
                eval_end=time.monotonic() if traced else 0.0,
                skipped=skipped,
            )
        except Exception as exc:  # container failures must not kill the server
            latency_ms = (time.perf_counter() - start) * 1000.0
            return RpcResponse(
                request_id=request.request_id,
                outputs=[],
                error=f"{type(exc).__name__}: {exc}",
                container_latency_ms=latency_ms,
                trace=request.trace,
            )

    async def drain(self, timeout_s: float = 5.0) -> None:
        """Graceful shutdown: finish the in-flight request, then stop.

        Sets the draining flag so the serving loop accepts no further
        requests, waits (bounded by ``timeout_s``) for the request currently
        being evaluated — if any — to be answered, then closes the transport
        and cancels the loop.  A request that outlives the timeout is cut
        off by the ordinary :meth:`stop` path.
        """
        self._draining = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            pass
        await self.stop()

    async def stop(self) -> None:
        """Close the transport and cancel the serving loop."""
        await self._transport.close()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, RpcError):
                pass
            self._task = None
