"""Shared-memory ring transport for same-host container replicas.

The fastest path between Clipper and a co-located container is the one that
never crosses the kernel's network stack: a pair of single-producer /
single-consumer byte rings living in one ``multiprocessing.shared_memory``
block, with socketpair doorbells for wakeups.  :class:`ShmRingPair` builds
two connected :class:`Transport` endpoints, drop-in behind the same seam as
:class:`~repro.rpc.transport.InProcessTransport` and
:class:`~repro.rpc.transport.TcpTransport`, so the pipelined
:class:`~repro.rpc.client.RpcClient`, heartbeats and trace-id propagation
all work unchanged.

Design
------
* **One shm block, two rings.**  Each direction is an SPSC ring: a small
  control header (monotonic ``head``/``tail`` byte counters plus a closed
  flag) followed by a circular data region.  Frames are a 4-byte length
  prefix plus the serializer's bytes, written at byte granularity with
  wraparound — a frame larger than the ring streams through in chunks as
  the consumer drains, so capacity bounds memory, not message size.
* **Segments in, never re-serialized.**  ``send`` feeds the writev-style
  segment list from :func:`~repro.rpc.serialization.serialize_buffers`
  straight into the ring — the frame is never joined into one ``bytes``
  and large ndarray payloads are copied exactly once (source buffer →
  ring).  ``recv`` copies the frame out of the ring (the slot is recycled,
  so decoded zero-copy views must not alias it) and hands the copy to the
  zero-copy decoder.
* **Doorbells, rung only on edges.**  Each ring gets one non-blocking
  ``socket.socketpair``: the producer rings it after publishing into an
  empty ring (a consumer might be parked) and the consumer rings it after
  draining a full ring (the producer might be parked).  In steady state —
  a pipelined dispatcher keeping the ring busy — neither side pays a
  doorbell syscall per frame.  ``os.eventfd`` would serve the same role on
  Linux; socketpairs keep the lane portable.
* **SPSC + same-memory-model assumption.**  One sender task and one
  receiver task per ring (exactly what ``RpcClient``'s send lock and
  single receive pump guarantee).  Counters are plain 8-byte stores; the
  in-process pair runs on one event loop (no parallelism), and the
  cross-process story assumes a total-store-order host (x86) with
  fork-inherited doorbell fds.

Availability is platform-dependent: ``HAS_SHARED_MEMORY`` is False where
``multiprocessing.shared_memory`` is unavailable, and constructing a pair
there raises :class:`~repro.core.exceptions.RpcError`.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Optional, Tuple

from repro.core.exceptions import RpcError
from repro.rpc.protocol import MAX_FRAME_BYTES
from repro.rpc.serialization import deserialize, serialize_buffers, serialized_nbytes
from repro.rpc.transport import Transport

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory

    HAS_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    HAS_SHARED_MEMORY = False

#: Default per-direction ring capacity (bytes of frame data in flight).
DEFAULT_RING_CAPACITY = 1 << 20

#: Per-ring control header: head u64, tail u64, closed u8, padding.
_CONTROL_BYTES = 32

_HEAD_OFFSET = 0
_TAIL_OFFSET = 8
_CLOSED_OFFSET = 16


class _Ring:
    """One SPSC byte ring mapped over a slice of the shared-memory block.

    ``head``/``tail`` are monotonically increasing byte counters (they never
    wrap; positions are ``counter % capacity``), so ``head - tail`` is always
    the number of unread bytes and full/empty are unambiguous.
    """

    __slots__ = ("_control", "_data", "capacity")

    def __init__(self, control: memoryview, data: memoryview) -> None:
        self._control = control
        self._data = data
        self.capacity = len(data)

    @property
    def head(self) -> int:
        return struct.unpack_from("<Q", self._control, _HEAD_OFFSET)[0]

    @head.setter
    def head(self, value: int) -> None:
        struct.pack_into("<Q", self._control, _HEAD_OFFSET, value)

    @property
    def tail(self) -> int:
        return struct.unpack_from("<Q", self._control, _TAIL_OFFSET)[0]

    @tail.setter
    def tail(self, value: int) -> None:
        struct.pack_into("<Q", self._control, _TAIL_OFFSET, value)

    @property
    def closed(self) -> bool:
        return self._control[_CLOSED_OFFSET] != 0

    def mark_closed(self) -> None:
        self._control[_CLOSED_OFFSET] = 1

    def write_at(self, position: int, chunk: memoryview) -> None:
        """Copy ``chunk`` into the ring starting at absolute ``position``."""
        start = position % self.capacity
        first = min(len(chunk), self.capacity - start)
        self._data[start : start + first] = chunk[:first]
        if first < len(chunk):
            self._data[0 : len(chunk) - first] = chunk[first:]

    def read_at(self, position: int, out: memoryview) -> None:
        """Copy ``len(out)`` ring bytes starting at absolute ``position``."""
        start = position % self.capacity
        first = min(len(out), self.capacity - start)
        out[:first] = self._data[start : start + first]
        if first < len(out):
            out[first:] = self._data[0 : len(out) - first]

    def release(self) -> None:
        self._control.release()
        self._data.release()


def _ring_bell(bell: socket.socket) -> None:
    """Wake the peer parked on the other end; never blocks, never raises."""
    try:
        bell.send(b"\x01")
    except (BlockingIOError, InterruptedError):
        pass  # buffer full: the peer already has wakeup bytes pending
    except OSError:
        pass  # peer hung up; its closed flag is what matters now


class _BellWaiter:
    """Parks a task on a doorbell socket without per-wait epoll churn.

    ``loop.sock_recv`` registers and unregisters the fd with the selector on
    *every* call — two ``epoll_ctl`` syscalls per park, which dominates the
    transport cost under a pipelined dispatcher.  Instead the fd is added to
    the selector once, permanently; the readiness callback drains the bell
    and latches a signal.  ``wait`` consumes the latch if a ring arrived
    while nobody was parked (preserving the persistent-bell-byte semantics
    the edge-trigger protocol relies on) and otherwise parks on a future the
    callback resolves.
    """

    __slots__ = ("_sock", "_loop", "_future", "_signaled", "_registered", "_on_eof")

    def __init__(self, sock: socket.socket, on_eof=None) -> None:
        self._sock = sock
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._future: Optional[asyncio.Future] = None
        self._signaled = False
        self._registered = False
        self._on_eof = on_eof

    async def wait(self) -> None:
        if self._signaled:
            self._signaled = False
            return
        loop = asyncio.get_running_loop()
        if not self._registered:
            loop.add_reader(self._sock.fileno(), self._on_readable)
            self._registered = True
            self._loop = loop
        self._future = loop.create_future()
        try:
            await self._future
        finally:
            self._future = None

    def _on_readable(self) -> None:
        at_eof = False
        try:
            at_eof = not self._sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            at_eof = True
        if at_eof:
            # Peer hung up: the fd stays readable forever, so stop watching
            # it (the close flags in shared memory carry the shutdown now).
            self._unregister()
            if self._on_eof is not None:
                self._on_eof()
        future = self._future
        if future is not None:
            if not future.done():
                future.set_result(None)
        else:
            self._signaled = True

    def _unregister(self) -> None:
        if self._registered and self._loop is not None:
            try:
                self._loop.remove_reader(self._sock.fileno())
            except (OSError, ValueError):  # pragma: no cover - loop closing
                pass
        self._registered = False

    def close(self) -> None:
        """Stop watching and wake any parked task (it re-checks the flags)."""
        self._unregister()
        future = self._future
        if future is not None and not future.done():
            future.set_result(None)


class ShmRingTransport(Transport):
    """One endpoint of a shared-memory ring pair (see module docstring)."""

    def __init__(
        self,
        out_ring: _Ring,
        in_ring: _Ring,
        bell_out: socket.socket,
        bell_in: socket.socket,
        release_cb,
        hangup_marks_closed: bool = False,
    ) -> None:
        self._out = out_ring
        self._in = in_ring
        # ``bell_out``: send data bells / await space bells for the out ring.
        # ``bell_in``: await data bells / send space bells for the in ring.
        self._bell_out = bell_out
        self._bell_in = bell_in
        # Cross-process endpoints opt into treating doorbell EOF as a peer
        # death signal: a SIGKILLed peer never sets the shared closed flags,
        # but the kernel closes its bell sockets, so EOF is the one reliable
        # crash notification.  Marking the rings closed wakes parked reads
        # and writes with "closed by peer" instead of hanging forever.
        on_eof = self._peer_hangup if hangup_marks_closed else None
        self._space_waiter = _BellWaiter(bell_out, on_eof=on_eof)
        self._data_waiter = _BellWaiter(bell_in, on_eof=on_eof)
        self._release_cb = release_cb
        self._closed = False

    def _peer_hangup(self) -> None:
        self._out.mark_closed()
        self._in.mark_closed()

    # -- Transport interface ---------------------------------------------------

    async def send(self, payload: dict) -> None:
        if self._closed or self._out.closed:
            raise RpcError("transport is closed")
        body = serialize_buffers(payload)
        length = serialized_nbytes(body)
        if length > MAX_FRAME_BYTES:
            raise RpcError(f"frame of {length} bytes exceeds maximum")
        # The frame (length prefix + serializer segments) streams into the
        # ring segment by segment — it is never joined into one bytes object.
        views = [memoryview(struct.pack("<I", length))]
        for segment in body:
            view = memoryview(segment)
            views.append(view if view.format == "B" else view.cast("B"))
        await self._write_frame(views, 4 + length)

    async def recv(self) -> dict:
        if self._closed:
            raise RpcError("transport is closed")
        header = bytearray(4)
        await self._read_exact(memoryview(header))
        (length,) = struct.unpack("<I", header)
        if length > MAX_FRAME_BYTES:
            raise RpcError(f"frame length {length} exceeds maximum")
        # The frame is copied out of the ring before decoding: the decoder's
        # zero-copy ndarray views alias this private buffer, not ring memory
        # that the producer will recycle.
        frame = bytearray(length)
        await self._read_exact(memoryview(frame))
        return deserialize(frame)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Both directions die, like a closed socket: mark both rings and wake
        # the peer whichever ring it is parked on.
        self._out.mark_closed()
        self._in.mark_closed()
        _ring_bell(self._bell_out)
        _ring_bell(self._bell_in)
        # Wake our own parked waiters (they re-check the closed flags) and
        # drop the fds from the selector before closing the sockets.
        self._space_waiter.close()
        self._data_waiter.close()
        self._bell_out.close()
        self._bell_in.close()
        self._out.release()
        self._in.release()
        self._release_cb()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- ring plumbing ---------------------------------------------------------

    async def _write_frame(self, views, total: int) -> None:
        """Stream a frame's segment list into the out ring.

        The common case — the whole frame fits in free space — costs one
        head/tail read, one copy per segment and one head publish.  A frame
        larger than the free space streams through in passes as the consumer
        drains, so ring capacity bounds memory, not message size.
        """
        ring = self._out
        index = 0
        seg_offset = 0
        written = 0
        while written < total:
            if self._closed or ring.closed:
                raise RpcError("transport is closed")
            head = ring.head
            tail = ring.tail
            free = ring.capacity - (head - tail)
            if free == 0:
                # Ring full: the consumer rings the space bell when it
                # drains a full ring, so parking here cannot be missed.
                await self._space_waiter.wait()
                continue
            was_empty = head == tail
            budget = min(free, total - written)
            while budget > 0:
                view = views[index]
                take = len(view) - seg_offset
                if take > budget:
                    take = budget
                    ring.write_at(head, view[seg_offset : seg_offset + take])
                    seg_offset += take
                else:
                    chunk = view[seg_offset:] if seg_offset else view
                    ring.write_at(head, chunk)
                    index += 1
                    seg_offset = 0
                head += take
                budget -= take
                written += take
            ring.head = head
            if was_empty:
                # Edge-triggered data bell: a consumer only parks after
                # observing an empty ring, and the state it observed is the
                # pre-publish one we just checked.
                _ring_bell(self._bell_out)

    async def _read_exact(self, out: memoryview) -> None:
        ring = self._in
        offset = 0
        total = len(out)
        while offset < total:
            head = ring.head
            tail = ring.tail
            available = head - tail
            if available == 0:
                if self._closed:
                    raise RpcError("transport is closed")
                if ring.closed:
                    raise RpcError("transport closed by peer")
                await self._data_waiter.wait()
                continue
            take = min(available, total - offset)
            ring.read_at(tail, out[offset : offset + take])
            was_full = available == ring.capacity
            ring.tail = tail + take
            if was_full:
                # Edge-triggered space bell: the producer only parks after
                # observing a full ring.
                _ring_bell(self._bell_in)
            offset += take


class ShmRingPair:
    """A connected pair of shared-memory ring endpoints (client, server).

    Mirrors :class:`~repro.rpc.transport.InProcessTransport`'s shape: build
    one pair, hand ``client_side`` to the :class:`~repro.rpc.client.RpcClient`
    and ``server_side`` to the container's RPC server.  The shared-memory
    block is unlinked once both endpoints have closed.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if not HAS_SHARED_MEMORY:
            raise RpcError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if capacity < 64:
            raise RpcError("ring capacity must be at least 64 bytes")
        span = _CONTROL_BYTES + capacity
        self._shm = _shared_memory.SharedMemory(create=True, size=2 * span)
        self.name = self._shm.name
        self._open_endpoints = 2
        self._released = False
        buf = self._shm.buf
        rings = []
        for index in range(2):
            base = index * span
            control = buf[base : base + _CONTROL_BYTES]
            data = buf[base + _CONTROL_BYTES : base + span]
            # Fresh SharedMemory blocks are zero-filled: head == tail == 0,
            # closed == 0, so the ring is valid without explicit init.
            rings.append((control, data))
        ring_a_client = _Ring(*rings[0])
        ring_b_client = _Ring(*rings[1])
        # Independent views for the server endpoint so each side releases
        # exactly its own memoryviews on close.
        ring_a_server = _Ring(buf[0:_CONTROL_BYTES], buf[_CONTROL_BYTES:span])
        ring_b_server = _Ring(
            buf[span : span + _CONTROL_BYTES], buf[span + _CONTROL_BYTES : 2 * span]
        )
        bells_a = socket.socketpair()
        bells_b = socket.socketpair()
        for sock in (*bells_a, *bells_b):
            sock.setblocking(False)
        # Ring A carries client→server frames, ring B server→client.
        self.client_side: Transport = ShmRingTransport(
            out_ring=ring_a_client,
            in_ring=ring_b_client,
            bell_out=bells_a[0],
            bell_in=bells_b[0],
            release_cb=self._release,
        )
        self.server_side: Transport = ShmRingTransport(
            out_ring=ring_b_server,
            in_ring=ring_a_server,
            bell_out=bells_b[1],
            bell_in=bells_a[1],
            release_cb=self._release,
        )

    def endpoints(self) -> Tuple[Transport, Transport]:
        """Return the (client, server) endpoints."""
        return self.client_side, self.server_side

    def _release(self) -> None:
        self._open_endpoints -= 1
        if self._open_endpoints <= 0 and not self._released:
            self._released = True
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


# -- cross-process endpoints ---------------------------------------------------
#
# ``ShmRingPair`` above connects two endpoints *in one process*: its doorbells
# are a socketpair, whose fds cannot cross an exec boundary.  The cluster
# plane needs the same rings between an ingress process and a worker daemon,
# so the cross-process variant swaps the socketpairs for two UNIX-domain
# connections (one per ring, playing exactly the socketpair's bidirectional
# bell role) and attaches the shared-memory block by name:
#
# * the **host** (worker) side creates the block and listens on a throwaway
#   UNIX socket; its ``descriptor()`` (shm name, bell path, capacity) travels
#   to the peer over the worker's control connection,
# * the **attacher** (ingress) side maps ``SharedMemory(name=...)`` and opens
#   two bell connections, identifying each ring with a one-byte preamble.
#
# Both sides enable ``hangup_marks_closed``: a SIGKILLed peer never sets the
# shared closed flags, but the kernel closing its bell sockets delivers EOF,
# which the transport converts into a normal "closed by peer" RpcError — the
# crash-detection path the cluster health monitor depends on.

_RING_A_PREAMBLE = b"\x01"
_RING_B_PREAMBLE = b"\x02"


def _release_mapping(shm) -> None:
    """Close one side's mapping and best-effort unlink the block.

    Both sides try to unlink: whichever closes last (or survives the peer's
    SIGKILL) actually removes the segment, and the loser's FileNotFoundError
    is expected.  A failed unlink still unregisters from the resource
    tracker so interpreter exit does not warn about a segment the peer
    already removed.
    """
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        try:  # pragma: no cover - depends on peer teardown order
            from multiprocessing import resource_tracker

            resource_tracker.unregister("/" + shm.name, "shared_memory")
        except Exception:
            pass


def _rings_over(buf, capacity: int) -> Tuple[_Ring, _Ring]:
    """The (ring A, ring B) views over one process's mapping of the block."""
    span = _CONTROL_BYTES + capacity
    ring_a = _Ring(buf[0:_CONTROL_BYTES], buf[_CONTROL_BYTES:span])
    ring_b = _Ring(
        buf[span : span + _CONTROL_BYTES], buf[span + _CONTROL_BYTES : 2 * span]
    )
    return ring_a, ring_b


class ShmHostEndpoint:
    """Creator (server) side of a cross-process shared-memory ring pair.

    Built by the worker daemon when a peer requests the shm lane: creates
    the block and the bell listener up front so :meth:`descriptor` can
    travel in the launch reply, then :meth:`accept` waits for the peer's
    two bell connections and returns the server-side transport.
    """

    def __init__(self, bell_dir: str, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if not HAS_SHARED_MEMORY:
            raise RpcError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if capacity < 64:
            raise RpcError("ring capacity must be at least 64 bytes")
        import os

        self.capacity = capacity
        span = _CONTROL_BYTES + capacity
        self._shm = _shared_memory.SharedMemory(create=True, size=2 * span)
        self.shm_name = self._shm.name
        os.makedirs(bell_dir, exist_ok=True)
        # Socket path length is capped (~107 bytes); derive a short name from
        # the (already unique) shm segment name.
        self.bell_path = os.path.join(bell_dir, f"{self.shm_name.lstrip('/')}.sock")
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._listener.bind(self.bell_path)
            self._listener.listen(2)
            self._listener.setblocking(False)
        except BaseException:
            self._listener.close()
            self._cleanup_paths()
            _release_mapping(self._shm)
            raise

    def descriptor(self) -> dict:
        """The attach instructions to send to the peer."""
        return {
            "shm_name": self.shm_name,
            "bell_path": self.bell_path,
            "capacity": self.capacity,
        }

    def _cleanup_paths(self) -> None:
        import os

        try:
            os.unlink(self.bell_path)
        except OSError:
            pass

    async def accept(self, timeout_s: float = 10.0) -> ShmRingTransport:
        """Wait for the peer's two bell connections; return the server side."""
        loop = asyncio.get_running_loop()
        bells: dict = {}
        try:
            async with asyncio.timeout(timeout_s):
                while len(bells) < 2:
                    conn, _ = await loop.sock_accept(self._listener)
                    conn.setblocking(False)
                    preamble = await loop.sock_recv(conn, 1)
                    if preamble == _RING_A_PREAMBLE and "a" not in bells:
                        bells["a"] = conn
                    elif preamble == _RING_B_PREAMBLE and "b" not in bells:
                        bells["b"] = conn
                    else:
                        conn.close()
        except BaseException:
            for conn in bells.values():
                conn.close()
            self.abort()
            raise RpcError(
                f"peer did not complete the shm bell handshake within {timeout_s}s"
            ) from None
        self._listener.close()
        self._cleanup_paths()
        ring_a, ring_b = _rings_over(self._shm.buf, self.capacity)
        shm = self._shm
        return ShmRingTransport(
            out_ring=ring_b,
            in_ring=ring_a,
            bell_out=bells["b"],
            bell_in=bells["a"],
            release_cb=lambda: _release_mapping(shm),
            hangup_marks_closed=True,
        )

    def abort(self) -> None:
        """Tear everything down when the peer never attached."""
        self._listener.close()
        self._cleanup_paths()
        _release_mapping(self._shm)


async def attach_shm_endpoint(descriptor: dict) -> ShmRingTransport:
    """Attach the client side of a host's ring pair from its descriptor."""
    if not HAS_SHARED_MEMORY:
        raise RpcError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    shm_name = str(descriptor["shm_name"])
    bell_path = str(descriptor["bell_path"])
    capacity = int(descriptor["capacity"])
    loop = asyncio.get_running_loop()
    shm = _shared_memory.SharedMemory(name=shm_name)
    bells = []
    try:
        for preamble in (_RING_A_PREAMBLE, _RING_B_PREAMBLE):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.setblocking(False)
            bells.append(sock)
            await loop.sock_connect(sock, bell_path)
            await loop.sock_sendall(sock, preamble)
    except BaseException as exc:
        for sock in bells:
            sock.close()
        shm.close()
        raise RpcError(f"could not attach shm endpoint: {exc}") from exc
    ring_a, ring_b = _rings_over(shm.buf, capacity)
    return ShmRingTransport(
        out_ring=ring_a,
        in_ring=ring_b,
        bell_out=bells[0],
        bell_in=bells[1],
        release_cb=lambda: _release_mapping(shm),
        hangup_marks_closed=True,
    )


__all__ = [
    "DEFAULT_RING_CAPACITY",
    "HAS_SHARED_MEMORY",
    "ShmHostEndpoint",
    "ShmRingPair",
    "ShmRingTransport",
    "attach_shm_endpoint",
]
