"""Lightweight RPC system connecting Clipper to its model containers.

The paper's model containers communicate with Clipper over a minimal
cross-language RPC protocol: length-prefixed framed messages carrying a
batch of serialized inputs, answered with a batch of serialized outputs.
This package implements the same narrow waist with three interchangeable
transports: an in-process transport (used by default, zero-copy over asyncio
queues), a real TCP transport (length-prefixed frames over asyncio streams)
and a same-host shared-memory ring transport (:mod:`repro.rpc.shm`) whose
doorbell-signalled SPSC rings skip the kernel network stack entirely.
"""

from repro.rpc.serialization import deserialize, serialize, serialize_buffers
from repro.rpc.protocol import (
    MessageType,
    RpcRequest,
    RpcResponse,
    decode_message,
    encode_message,
    encode_message_buffers,
)
from repro.rpc.transport import InProcessTransport, TcpTransport, Transport
from repro.rpc.shm import HAS_SHARED_MEMORY, ShmRingPair, ShmRingTransport
from repro.rpc.client import RpcClient
from repro.rpc.server import ContainerRpcServer

__all__ = [
    "serialize",
    "serialize_buffers",
    "deserialize",
    "MessageType",
    "RpcRequest",
    "RpcResponse",
    "encode_message",
    "encode_message_buffers",
    "decode_message",
    "Transport",
    "InProcessTransport",
    "TcpTransport",
    "HAS_SHARED_MEMORY",
    "ShmRingPair",
    "ShmRingTransport",
    "RpcClient",
    "ContainerRpcServer",
]
