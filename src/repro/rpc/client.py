"""RPC client used by the model abstraction layer to reach a container replica."""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Dict, List, Optional

from repro.core.exceptions import RpcError
from repro.rpc.protocol import MessageType, RpcRequest, RpcResponse, message_type
from repro.rpc.transport import Transport


class RpcClient:
    """Sends batch prediction requests over a transport and awaits responses.

    One client is bound to one container replica (matching the paper's one
    queue / one RPC connection per replica design).  The client *pipelines*:
    several requests may be outstanding on the connection at once — the
    batching dispatcher overlaps draining and encoding the next batch with
    the container's evaluation of the current one — so responses are
    demultiplexed by ``request_id``.  A single background receive pump owns
    ``transport.recv()`` and resolves each response's waiter; the container
    server evaluates requests one at a time in arrival order, so per-request
    results always land on the matching waiter regardless of how many
    batches are in flight.
    """

    def __init__(self, transport: Transport, timeout_s: Optional[float] = 30.0) -> None:
        self._transport = transport
        self._timeout_s = timeout_s
        self._request_ids = itertools.count()
        self._send_lock = asyncio.Lock()
        self._pending: Dict[int, asyncio.Future] = {}
        self._pump_task: Optional[asyncio.Task] = None

    async def predict(
        self,
        model_name: str,
        inputs: List[Any],
        metadata: Optional[dict] = None,
        trace: Optional[List[Any]] = None,
        span_log: Optional[list] = None,
        deadlines: Optional[List[float]] = None,
    ) -> RpcResponse:
        """Send one batch and wait for the aligned batch of outputs.

        Safe to call concurrently: requests are written to the transport one
        at a time, but callers wait on their own response waiter, so a new
        batch can be sent while earlier batches are still being evaluated.

        ``trace`` carries the trace ids of traced queries in the batch (the
        optional wire header); ``deadlines`` carries per-entry absolute
        monotonic deadlines (0.0 = none) the server may use to skip
        already-expired entries, reported back via ``response.skipped``;
        ``span_log``, when given, receives
        ``("rpc.send"/"rpc.wait", t0, t1, None)`` monotonic span tuples for
        the send and response-wait legs of this exchange.
        """
        if not inputs:
            raise RpcError("cannot send an empty prediction batch")
        request = RpcRequest(
            request_id=next(self._request_ids),
            model_name=model_name,
            inputs=inputs,
            metadata=metadata or {},
            trace=tuple(trace) if trace else (),
            deadlines=tuple(deadlines) if deadlines else (),
        )
        payload = await self._exchange(
            request.request_id, request.to_payload(), span_log=span_log
        )
        response = RpcResponse.from_payload(payload)
        if response.ok and len(response.outputs) + len(response.skipped) != len(inputs):
            raise RpcError(
                f"container returned {len(response.outputs)} outputs "
                f"and {len(response.skipped)} skips "
                f"for a batch of {len(inputs)} inputs"
            )
        return response

    async def heartbeat(self, timeout_s: Optional[float] = None) -> bool:
        """Probe container health; returns True when it responds healthy.

        ``timeout_s`` bounds the whole probe, so health monitors can use a
        probe deadline much shorter than the prediction RPC timeout even
        while batches are in flight on the same connection.  A response
        whose ``healthy`` flag is false (the container's own
        :meth:`~repro.containers.base.ModelContainer.healthy` verdict) counts
        as a failed probe even though the transport is alive.
        """
        request_id = next(self._request_ids)
        message = {"type": int(MessageType.HEARTBEAT), "request_id": request_id}
        try:
            # The timeout wraps the whole exchange — including waiting for
            # the send lock behind an in-flight batch and the send itself —
            # not just the response wait, so a wedged connection probes
            # False instead of hanging the health monitor.
            exchange = self._exchange(request_id, message, timeout_s=None)
            if timeout_s is None:
                payload = await exchange
            else:
                payload = await asyncio.wait_for(exchange, timeout=timeout_s)
        except (RpcError, asyncio.TimeoutError):
            return False
        return message_type(payload) == MessageType.HEARTBEAT_RESPONSE and bool(
            payload.get("healthy", True)
        )

    async def _exchange(
        self,
        request_id: int,
        message: dict,
        timeout_s: Optional[float] = ...,
        span_log: Optional[list] = None,
    ) -> dict:
        """Send one message and wait for the response with its request id."""
        if timeout_s is ...:
            timeout_s = self._timeout_s
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        t_send = time.monotonic() if span_log is not None else 0.0
        async with self._send_lock:
            self._ensure_pump(loop)
            self._pending[request_id] = waiter
            try:
                await self._transport.send(message)
            except BaseException:
                self._pending.pop(request_id, None)
                raise
        if span_log is not None:
            t_sent = time.monotonic()
            span_log.append(("rpc.send", t_send, t_sent, None))
        try:
            if timeout_s is None:
                payload = await waiter
            else:
                try:
                    payload = await asyncio.wait_for(waiter, timeout=timeout_s)
                except asyncio.TimeoutError as exc:
                    raise RpcError(
                        f"timed out after {timeout_s}s waiting for response"
                    ) from exc
            if span_log is not None:
                span_log.append(("rpc.wait", t_sent, time.monotonic(), None))
            return payload
        finally:
            # A response arriving after a timeout finds no pending entry and
            # is dropped by the pump (the old stale-response behaviour).
            self._pending.pop(request_id, None)

    def _ensure_pump(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = loop.create_task(self._pump())

    async def _pump(self) -> None:
        """Receive loop: route each response to its request's waiter.

        Runs until the transport closes (or errors), then fails every
        still-pending waiter so in-flight callers see the connection error
        instead of their own timeout.
        """
        try:
            while True:
                payload = await self._transport.recv()
                waiter = self._pending.pop(int(payload.get("request_id", -1)), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(payload)
                # No waiter: stale response from an abandoned request — drop.
        except RpcError as exc:
            self._fail_pending(RpcError(f"connection closed: {exc}"))
        except asyncio.CancelledError:
            self._fail_pending(RpcError("transport is closed"))
            raise

    def _fail_pending(self, error: RpcError) -> None:
        pending, self._pending = self._pending, {}
        for waiter in pending.values():
            if not waiter.done():
                waiter.set_exception(error)

    async def close(self) -> None:
        await self._transport.close()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self._fail_pending(RpcError("transport is closed"))
