"""RPC client used by the model abstraction layer to reach a container replica."""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, List, Optional

from repro.core.exceptions import RpcError
from repro.rpc.protocol import MessageType, RpcRequest, RpcResponse, message_type
from repro.rpc.transport import Transport


class RpcClient:
    """Sends batch prediction requests over a transport and awaits responses.

    One client is bound to one container replica (matching the paper's one
    queue / one RPC connection per replica design).  Requests are issued one
    at a time per client; the batching dispatcher never pipelines more than
    one outstanding batch per replica because the next batch's size depends
    on the previous batch's measured latency.
    """

    def __init__(self, transport: Transport, timeout_s: Optional[float] = 30.0) -> None:
        self._transport = transport
        self._timeout_s = timeout_s
        self._request_ids = itertools.count()
        self._lock = asyncio.Lock()

    async def predict(
        self, model_name: str, inputs: List[Any], metadata: Optional[dict] = None
    ) -> RpcResponse:
        """Send one batch and wait for the aligned batch of outputs."""
        if not inputs:
            raise RpcError("cannot send an empty prediction batch")
        request = RpcRequest(
            request_id=next(self._request_ids),
            model_name=model_name,
            inputs=inputs,
            metadata=metadata or {},
        )
        async with self._lock:
            await self._transport.send(request.to_payload())
            payload = await self._recv_matching(request.request_id)
        response = RpcResponse.from_payload(payload)
        if response.ok and len(response.outputs) != len(inputs):
            raise RpcError(
                f"container returned {len(response.outputs)} outputs "
                f"for a batch of {len(inputs)} inputs"
            )
        return response

    async def heartbeat(self, timeout_s: Optional[float] = None) -> bool:
        """Probe container health; returns True when it responds healthy.

        ``timeout_s`` bounds the whole probe — including waiting for the
        client lock behind an in-flight batch — so health monitors can use a
        probe deadline much shorter than the prediction RPC timeout.  A
        response whose ``healthy`` flag is false (the container's own
        :meth:`~repro.containers.base.ModelContainer.healthy` verdict) counts
        as a failed probe even though the transport is alive.
        """
        request_id = next(self._request_ids)
        try:
            exchange = self._heartbeat_exchange(request_id)
            if timeout_s is None:
                payload = await exchange
            else:
                payload = await asyncio.wait_for(exchange, timeout=timeout_s)
        except (RpcError, asyncio.TimeoutError):
            return False
        return message_type(payload) == MessageType.HEARTBEAT_RESPONSE and bool(
            payload.get("healthy", True)
        )

    async def _heartbeat_exchange(self, request_id: int) -> dict:
        async with self._lock:
            await self._transport.send(
                {"type": int(MessageType.HEARTBEAT), "request_id": request_id}
            )
            return await self._recv_matching(request_id)

    async def _recv_matching(self, request_id: int) -> dict:
        """Receive until a payload with the expected request id arrives."""
        while True:
            if self._timeout_s is None:
                payload = await self._transport.recv()
            else:
                try:
                    payload = await asyncio.wait_for(
                        self._transport.recv(), timeout=self._timeout_s
                    )
                except asyncio.TimeoutError as exc:
                    raise RpcError(
                        f"timed out after {self._timeout_s}s waiting for response"
                    ) from exc
            if int(payload.get("request_id", -1)) == request_id:
                return payload
            # Stale response from an abandoned request: drop and keep reading.

    async def close(self) -> None:
        await self._transport.close()
