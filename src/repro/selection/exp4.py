"""Exp4 ensemble selection policy (paper §5.2).

Exp4 ("Exp3 with expert advice") maintains a weight per base model and
combines *all* model predictions into a weighted vote, updating each model's
weight from its individual prediction error.  Unlike Exp3, whose accuracy is
bounded by the single best model, Exp4 can exceed the best base model as the
ensemble grows.  The combine step also produces the agreement-based
confidence score of §5.2.1, and under straggler mitigation it operates on
whatever subset of predictions arrived by the deadline (§5.2.2), reporting
the reduced agreement in the confidence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.ensemble import agreement_confidence, normalize_weights, weighted_vote
from repro.selection.policy import SelectionPolicy, SelectionState

_MIN_WEIGHT = 1e-6
_MAX_WEIGHT = 1e9


class Exp4Policy(SelectionPolicy):
    """Ensemble selection with Exp4-style multiplicative weight updates.

    Parameters
    ----------
    eta:
        Learning rate of the multiplicative weight update.
    count_missing_in_confidence:
        When true (default), models selected for a query but missing from the
        available predictions (stragglers) count against the confidence — the
        paper defines confidence as "the fraction of models that agree on the
        prediction" out of the deployed ensemble.
    """

    name = "exp4"

    def __init__(self, eta: float = 0.2, count_missing_in_confidence: bool = True) -> None:
        if eta <= 0:
            raise SelectionPolicyError("eta must be positive")
        self.eta = eta
        self.count_missing_in_confidence = count_missing_in_confidence

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        keys = self._model_keys(model_ids)
        return {
            "policy": self.name,
            "weights": {key: 1.0 for key in keys},
            "n_feedback": 0,
        }

    def select(self, state: SelectionState, x: Any) -> List[str]:
        # The ensemble policy always evaluates every deployed model.
        return list(state["weights"].keys())

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        if not predictions:
            raise SelectionPolicyError("Exp4 combine called with no predictions")
        weights = normalize_weights(state["weights"])
        label, _ = weighted_vote(predictions, weights)
        ensemble_size = (
            len(state["weights"]) if self.count_missing_in_confidence else len(predictions)
        )
        confidence = agreement_confidence(predictions, label, ensemble_size)
        return label, confidence

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        for model_key in state["weights"]:
            if model_key not in predictions:
                # No prediction from this model for this query (straggler or
                # cache miss on the feedback path): leave its weight unchanged.
                continue
            loss = self.loss(feedback, predictions[model_key])
            updated = state["weights"][model_key] * float(np.exp(-self.eta * loss))
            state["weights"][model_key] = float(np.clip(updated, _MIN_WEIGHT, _MAX_WEIGHT))
        state["n_feedback"] = state.get("n_feedback", 0) + 1
        self._renormalize(state)
        return state

    @staticmethod
    def _renormalize(state: SelectionState) -> None:
        weights = state["weights"]
        mean = sum(weights.values()) / len(weights)
        if mean <= 0:
            return
        for key in weights:
            weights[key] = float(np.clip(weights[key] / mean, _MIN_WEIGHT, _MAX_WEIGHT))

    def model_weights(self, state: SelectionState) -> Dict[str, float]:
        """Normalized view of the current ensemble weights (for reporting)."""
        return normalize_weights(state["weights"])
