"""Epsilon-greedy single-model selection (extension beyond the paper).

A simpler bandit than Exp3: with probability ε a random model is explored,
otherwise the model with the lowest observed mean loss is exploited.  It is
included as an additional selection policy demonstrating the pluggable
policy API, and as an ablation point against Exp3 in the benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.policy import SelectionPolicy, SelectionState


class EpsilonGreedyPolicy(SelectionPolicy):
    """ε-greedy bandit over deployed models using mean observed loss."""

    name = "epsilon_greedy"

    def __init__(self, epsilon: float = 0.1, seed: int = 0) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise SelectionPolicyError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = np.random.default_rng(seed)

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        keys = self._model_keys(model_ids)
        return {
            "policy": self.name,
            "total_loss": {key: 0.0 for key in keys},
            "plays": {key: 0 for key in keys},
            "n_feedback": 0,
        }

    def _mean_losses(self, state: SelectionState) -> Dict[str, float]:
        means = {}
        for key in state["total_loss"]:
            plays = state["plays"].get(key, 0)
            # Optimistic prior: unplayed models look perfect so they get tried.
            means[key] = state["total_loss"][key] / plays if plays > 0 else 0.0
        return means

    def select(self, state: SelectionState, x: Any) -> List[str]:
        keys = list(state["total_loss"].keys())
        if self._rng.random() < self.epsilon:
            return [keys[int(self._rng.integers(0, len(keys)))]]
        means = self._mean_losses(state)
        best = min(keys, key=lambda key: (means[key], key))
        return [best]

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        if not predictions:
            raise SelectionPolicyError("combine called with no predictions")
        return next(iter(predictions.values())), 1.0

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        for model_key, prediction in predictions.items():
            if model_key not in state["total_loss"]:
                continue
            loss = self.loss(feedback, prediction)
            state["total_loss"][model_key] += loss
            state["plays"][model_key] = state["plays"].get(model_key, 0) + 1
        state["n_feedback"] = state.get("n_feedback", 0) + 1
        return state
