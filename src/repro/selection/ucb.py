"""UCB1 single-model selection (extension beyond the paper).

Upper-Confidence-Bound selection of the model with the best optimistic
reward estimate.  Unlike Exp3 it assumes stochastic (not adversarial)
losses, making it a useful comparison point: it converges faster on
stationary workloads but reacts more slowly to the sudden model failures of
the Figure 8 experiment.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.policy import SelectionPolicy, SelectionState


class UCB1Policy(SelectionPolicy):
    """UCB1 bandit over deployed models (reward = 1 − loss)."""

    name = "ucb"

    def __init__(self, exploration_coefficient: float = 1.4) -> None:
        if exploration_coefficient <= 0:
            raise SelectionPolicyError("exploration_coefficient must be positive")
        self.exploration_coefficient = exploration_coefficient

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        keys = self._model_keys(model_ids)
        return {
            "policy": self.name,
            "total_reward": {key: 0.0 for key in keys},
            "plays": {key: 0 for key in keys},
            "n_feedback": 0,
        }

    def select(self, state: SelectionState, x: Any) -> List[str]:
        keys = list(state["total_reward"].keys())
        # Play every arm once before applying the UCB formula.
        for key in keys:
            if state["plays"].get(key, 0) == 0:
                return [key]
        total_plays = sum(state["plays"][key] for key in keys)
        scores = {}
        for key in keys:
            plays = state["plays"][key]
            mean_reward = state["total_reward"][key] / plays
            bonus = self.exploration_coefficient * math.sqrt(
                math.log(max(total_plays, 2)) / plays
            )
            scores[key] = mean_reward + bonus
        best = max(keys, key=lambda key: (scores[key], key))
        return [best]

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        if not predictions:
            raise SelectionPolicyError("combine called with no predictions")
        return next(iter(predictions.values())), 1.0

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        for model_key, prediction in predictions.items():
            if model_key not in state["total_reward"]:
                continue
            reward = 1.0 - self.loss(feedback, prediction)
            state["total_reward"][model_key] += reward
            state["plays"][model_key] = state["plays"].get(model_key, 0) + 1
        state["n_feedback"] = state.get("n_feedback", 0) + 1
        return state
