"""Model selection layer (paper §5): bandit policies, ensembles, contextualization."""

from repro.selection.policy import SelectionPolicy, SelectionState, make_policy
from repro.selection.exp3 import Exp3Policy
from repro.selection.exp4 import Exp4Policy
from repro.selection.epsilon_greedy import EpsilonGreedyPolicy
from repro.selection.thompson import ThompsonSamplingPolicy
from repro.selection.ucb import UCB1Policy
from repro.selection.single import SingleModelPolicy
from repro.selection.ensemble import (
    agreement_confidence,
    majority_vote,
    weighted_vote,
)
from repro.selection.manager import SelectionStateManager

__all__ = [
    "SelectionPolicy",
    "SelectionState",
    "make_policy",
    "Exp3Policy",
    "Exp4Policy",
    "EpsilonGreedyPolicy",
    "ThompsonSamplingPolicy",
    "UCB1Policy",
    "SingleModelPolicy",
    "majority_vote",
    "weighted_vote",
    "agreement_confidence",
    "SelectionStateManager",
]
