"""Contextualized selection-state management (paper §5.3).

The selection layer can be configured to instantiate a unique selection
state for each user, context or session, stored in an external database
(Redis in the paper, :class:`~repro.state.kvstore.KeyValueStore` here).  The
:class:`SelectionStateManager` owns that mapping: it lazily initialises the
state for a new context via the policy's ``init`` function, reads and writes
states through the store, and exposes the observe path used when feedback
arrives.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.types import ModelId
from repro.selection.policy import SelectionPolicy, SelectionState
from repro.state.kvstore import KeyValueStore

#: Context key used when a query carries no user/session id.
DEFAULT_CONTEXT = "__global__"


class SelectionStateManager:
    """Per-context selection state backed by a key-value store."""

    def __init__(
        self,
        policy: SelectionPolicy,
        model_ids: Sequence[ModelId],
        store: Optional[KeyValueStore] = None,
        namespace: str = "selection-state",
    ) -> None:
        self.policy = policy
        self.model_ids = list(model_ids)
        self.store = store or KeyValueStore()
        self.namespace = namespace

    # -- state plumbing -------------------------------------------------------

    def _context_key(self, context: Optional[str]) -> str:
        return context if context else DEFAULT_CONTEXT

    def get_state(self, context: Optional[str] = None) -> SelectionState:
        """Fetch (lazily creating) the selection state for one context."""
        key = self._context_key(context)
        state = self.store.get(self.namespace, key)
        if state is None:
            state = self.policy.init(self.model_ids)
            self.store.put(self.namespace, key, state)
        return state

    def put_state(self, state: SelectionState, context: Optional[str] = None) -> None:
        """Persist an updated selection state for one context."""
        self.store.put(self.namespace, self._context_key(context), state)

    def contexts(self) -> List[str]:
        """All contexts with instantiated selection state."""
        return self.store.keys(self.namespace)

    def reset(self, context: Optional[str] = None) -> None:
        """Drop the state of one context (or every context when None)."""
        if context is None:
            self.store.clear(self.namespace)
        else:
            self.store.delete(self.namespace, self._context_key(context))

    def prune(self, keep_contexts: Iterable[Optional[str]]) -> List[str]:
        """Drop every instantiated context state except ``keep_contexts``.

        Contexts accumulate forever otherwise — one state per user/session
        that ever issued a query, long after those sessions ended.  The
        routing layer calls this when it retires a serving-set namespace
        (``prune(())`` clears it entirely); applications can call it with
        their live session ids to garbage-collect per-user state.  Returns
        the context keys that were dropped.
        """
        keep = {self._context_key(context) for context in keep_contexts}
        dropped = [key for key in self.store.keys(self.namespace) if key not in keep]
        for key in dropped:
            self.store.delete(self.namespace, key)
        return dropped

    # -- policy operations ----------------------------------------------------

    def select(self, x: Any, context: Optional[str] = None) -> List[str]:
        """Choose which models to query for input ``x`` in ``context``."""
        return self.select_with_state(x, context)[0]

    def select_with_state(
        self, x: Any, context: Optional[str] = None
    ) -> Tuple[List[str], SelectionState]:
        """Like :meth:`select`, but also return the context's state.

        The serving engine threads the returned state into :meth:`combine`
        for the same query, saving a second store read per prediction.
        """
        state = self.get_state(context)
        selected = self.policy.select(state, x)
        if self.policy.select_mutates_state:
            # select() mutated bookkeeping inside the state (e.g. play
            # counts); persist it.  Read-only policies skip the write-back —
            # one store round-trip per query on the serving hot path.
            self.put_state(state, context)
        return selected, state

    def combine(
        self,
        x: Any,
        predictions: Dict[str, Any],
        context: Optional[str] = None,
        state: Optional[SelectionState] = None,
    ) -> Tuple[Any, float]:
        """Combine available predictions into (output, confidence).

        ``state`` lets a caller that already holds the context's state (from
        :meth:`select_with_state`) skip the store read.
        """
        if state is None:
            state = self.get_state(context)
        return self.policy.combine(state, x, predictions)

    def observe(
        self,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
        context: Optional[str] = None,
    ) -> SelectionState:
        """Apply feedback to the context's state and persist the result."""
        state = self.get_state(context)
        updated = self.policy.observe(state, x, feedback, predictions)
        self.put_state(updated, context)
        return updated
