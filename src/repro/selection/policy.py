"""The model selection policy interface (paper Listing 2).

A selection policy is a *stateless strategy object* operating on an explicit,
serializable state value::

    interface SelectionPolicy<S, X, Y> {
        S init();
        List<ModelId> select(S s, X x);
        pair<Y, double> combine(S s, X x, Map<ModelId, Y> pred);
        S observe(S s, X x, Y feedback, Map<ModelId, Y> pred);
    }

Keeping the state external is what enables contextualization (§5.3): Clipper
instantiates one state per user/session/context, all driven by the same
policy object, and persists the states in an external store.

In this reproduction the state is a plain dict (JSON-friendly), the query
type ``X`` is opaque, and predictions ``Y`` are the model outputs returned by
the containers (class labels for the classification benchmarks).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId

#: The selection state is a plain serializable dictionary.
SelectionState = Dict[str, Any]


class SelectionPolicy:
    """Base class for model selection policies.

    Subclasses implement the four functions of Listing 2.  Model ids are
    passed as strings (``"name:version"``) inside the state so that states
    remain serializable; the ``select`` return value uses the same strings.
    """

    name = "base"

    #: Whether :meth:`select` mutates bookkeeping inside the state (e.g. play
    #: counts).  Policies that only *read* state in select leave this False,
    #: letting the state manager skip the per-query store write-back on the
    #: serving hot path; :meth:`observe` is always persisted.
    select_mutates_state = False

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        """Return the initial state for a fresh context over ``model_ids``."""
        raise NotImplementedError

    def select(self, state: SelectionState, x: Any) -> List[str]:
        """Choose which deployed models to query for input ``x``."""
        raise NotImplementedError

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        """Combine the available model predictions into (output, confidence).

        ``predictions`` may contain only a subset of the selected models when
        straggler mitigation fired; policies must handle missing entries and
        reflect them in the confidence score (§5.2.2).
        """
        raise NotImplementedError

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        """Update and return the state given ground-truth feedback."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def _model_keys(model_ids: Sequence[ModelId]) -> List[str]:
        keys = [str(m) for m in model_ids]
        if not keys:
            raise SelectionPolicyError("at least one model must be deployed")
        if len(set(keys)) != len(keys):
            raise SelectionPolicyError("duplicate model ids passed to selection policy")
        return keys

    @staticmethod
    def loss(y_true: Any, y_pred: Any) -> float:
        """Default 0/1 loss in [0, 1] used as bandit feedback."""
        if y_pred is None:
            return 1.0
        return 0.0 if y_true == y_pred else 1.0


def make_policy(name: str, **kwargs) -> SelectionPolicy:
    """Factory mapping policy names used in :class:`ClipperConfig` to objects."""
    from repro.selection.epsilon_greedy import EpsilonGreedyPolicy
    from repro.selection.exp3 import Exp3Policy
    from repro.selection.exp4 import Exp4Policy
    from repro.selection.single import SingleModelPolicy
    from repro.selection.thompson import ThompsonSamplingPolicy
    from repro.selection.ucb import UCB1Policy

    policies = {
        "exp3": Exp3Policy,
        "exp4": Exp4Policy,
        "single": SingleModelPolicy,
        "epsilon_greedy": EpsilonGreedyPolicy,
        "thompson": ThompsonSamplingPolicy,
        "ucb": UCB1Policy,
    }
    if name not in policies:
        raise SelectionPolicyError(
            f"unknown selection policy '{name}', expected one of {sorted(policies)}"
        )
    return policies[name](**kwargs)
