"""Thompson-sampling single-model selection (extension beyond the paper).

Each model's per-query success probability is modelled with a Beta
posterior; on every query a sample is drawn from each posterior and the
model with the highest sampled success rate is queried.  Thompson sampling
is a strong stochastic-bandit baseline that sits between epsilon-greedy and
Exp3 in the exploration spectrum: it adapts quickly on stationary workloads
and — because the posteriors keep finite width — it also recovers from model
degradation, although more slowly than the adversarially-robust Exp3.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.policy import SelectionPolicy, SelectionState


class ThompsonSamplingPolicy(SelectionPolicy):
    """Beta-Bernoulli Thompson sampling over deployed models.

    Parameters
    ----------
    prior_successes, prior_failures:
        Parameters of the Beta prior shared by every model (default Beta(1,1),
        the uniform prior).
    discount:
        Optional forgetting factor in (0, 1]; values below 1 exponentially
        discount old observations so the posterior can track non-stationary
        model quality (the Figure 8 failure scenario).
    seed:
        Seed of the sampling RNG (per-policy-object, not per-state).
    """

    name = "thompson"

    def __init__(
        self,
        prior_successes: float = 1.0,
        prior_failures: float = 1.0,
        discount: float = 1.0,
        seed: int = 0,
    ) -> None:
        if prior_successes <= 0 or prior_failures <= 0:
            raise SelectionPolicyError("Beta prior parameters must be positive")
        if not 0.0 < discount <= 1.0:
            raise SelectionPolicyError("discount must be in (0, 1]")
        self.prior_successes = prior_successes
        self.prior_failures = prior_failures
        self.discount = discount
        self._rng = np.random.default_rng(seed)

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        keys = self._model_keys(model_ids)
        return {
            "policy": self.name,
            "successes": {key: 0.0 for key in keys},
            "failures": {key: 0.0 for key in keys},
            "n_feedback": 0,
        }

    def select(self, state: SelectionState, x: Any) -> List[str]:
        keys = list(state["successes"].keys())
        samples = {}
        for key in keys:
            alpha = self.prior_successes + state["successes"][key]
            beta = self.prior_failures + state["failures"][key]
            samples[key] = float(self._rng.beta(alpha, beta))
        best = max(keys, key=lambda key: (samples[key], key))
        return [best]

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        if not predictions:
            raise SelectionPolicyError("combine called with no predictions")
        return next(iter(predictions.values())), 1.0

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        for model_key, prediction in predictions.items():
            if model_key not in state["successes"]:
                continue
            if self.discount < 1.0:
                state["successes"][model_key] *= self.discount
                state["failures"][model_key] *= self.discount
            if self.loss(feedback, prediction) == 0.0:
                state["successes"][model_key] += 1.0
            else:
                state["failures"][model_key] += 1.0
        state["n_feedback"] = state.get("n_feedback", 0) + 1
        return state

    def posterior_means(self, state: SelectionState) -> Dict[str, float]:
        """Posterior mean success probability per model (for reporting)."""
        means = {}
        for key in state["successes"]:
            alpha = self.prior_successes + state["successes"][key]
            beta = self.prior_failures + state["failures"][key]
            means[key] = alpha / (alpha + beta)
        return means
