"""Static single-model policy: always query one designated (or first) model.

This is the "no model selection" baseline: the behaviour of a conventional
serving system that pins a single model chosen offline.  It is used by the
Figure 8 experiment to show the cost of static selection when a model
degrades, and by the TensorFlow-Serving comparison where only one model is
deployed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.policy import SelectionPolicy, SelectionState


class SingleModelPolicy(SelectionPolicy):
    """Always routes queries to one fixed model.

    Parameters
    ----------
    model_name:
        The ``"name:version"`` key (or bare name) of the pinned model; when
        omitted the first deployed model is used.
    """

    name = "single"

    def __init__(self, model_name: Optional[str] = None) -> None:
        self.model_name = model_name

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        keys = self._model_keys(model_ids)
        chosen = keys[0]
        if self.model_name is not None:
            matches = [
                key
                for key in keys
                if key == self.model_name or key.split(":", 1)[0] == self.model_name
            ]
            if not matches:
                raise SelectionPolicyError(
                    f"pinned model '{self.model_name}' is not deployed (have {keys})"
                )
            chosen = matches[0]
        return {"policy": self.name, "model": chosen, "all_models": keys, "n_feedback": 0}

    def select(self, state: SelectionState, x: Any) -> List[str]:
        return [state["model"]]

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        if not predictions:
            raise SelectionPolicyError("SingleModelPolicy combine called with no predictions")
        model = state["model"]
        if model in predictions:
            return predictions[model], 1.0
        # Should not normally happen, but fall back to any available prediction.
        return next(iter(predictions.values())), 0.0

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        state["n_feedback"] = state.get("n_feedback", 0) + 1
        return state
