"""Exp3 single-model selection policy (paper §5.1).

Exp3 treats model selection as an adversarial multi-armed bandit: each
deployed model carries a weight ``s_i`` (initialised to 1); a model is
selected with probability ``p_i = s_i / Σ s_j``; after feedback with loss
``L(y, ŷ) ∈ [0, 1]``, the selected model's weight is updated as
``s_i ← s_i · exp(−η · L / p_i)``.  Only one model is evaluated per query,
so the policy has minimal computational overhead, and its regret guarantees
ensure it converges to the single best model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.policy import SelectionPolicy, SelectionState

#: Weights are clipped into this range so that a long streak of losses can
#: never drive a weight to exactly zero (which would freeze exploration) nor
#: overflow the exponential update.
_MIN_WEIGHT = 1e-6
_MAX_WEIGHT = 1e9


class Exp3Policy(SelectionPolicy):
    """Single-model selection with the Exp3 bandit algorithm.

    Parameters
    ----------
    eta:
        Learning rate η controlling how quickly recent feedback moves the
        weights ("determines how quickly Clipper responds to recent feedback").
    exploration:
        Extra uniform-exploration mass γ mixed into the sampling distribution,
        as in the original Exp3 formulation; 0 reproduces the paper's
        plain weight-proportional sampling.
    seed:
        Seed for the sampling RNG (per-policy-object, not per-state).
    """

    name = "exp3"

    def __init__(self, eta: float = 0.1, exploration: float = 0.05, seed: int = 0) -> None:
        if eta <= 0:
            raise SelectionPolicyError("eta must be positive")
        if not 0.0 <= exploration < 1.0:
            raise SelectionPolicyError("exploration must be in [0, 1)")
        self.eta = eta
        self.exploration = exploration
        self._rng = np.random.default_rng(seed)

    def init(self, model_ids: Sequence[ModelId]) -> SelectionState:
        keys = self._model_keys(model_ids)
        return {
            "policy": self.name,
            "weights": {key: 1.0 for key in keys},
            "plays": {key: 0 for key in keys},
            "n_feedback": 0,
        }

    def _probabilities(self, state: SelectionState) -> Tuple[List[str], np.ndarray]:
        weights = state["weights"]
        keys = list(weights.keys())
        values = np.array([weights[k] for k in keys], dtype=float)
        total = values.sum()
        if total <= 0:
            probs = np.full(len(keys), 1.0 / len(keys))
        else:
            probs = values / total
        if self.exploration > 0:
            probs = (1.0 - self.exploration) * probs + self.exploration / len(keys)
        probs = probs / probs.sum()
        return keys, probs

    select_mutates_state = True  # select() bumps per-arm play counts

    def select(self, state: SelectionState, x: Any) -> List[str]:
        keys, probs = self._probabilities(state)
        choice = self._rng.choice(len(keys), p=probs)
        selected = keys[int(choice)]
        state["plays"][selected] = state["plays"].get(selected, 0) + 1
        return [selected]

    def combine(
        self, state: SelectionState, x: Any, predictions: Dict[str, Any]
    ) -> Tuple[Any, float]:
        if not predictions:
            raise SelectionPolicyError("Exp3 combine called with no predictions")
        # Exactly one model was queried; its prediction is the output.  If the
        # straggler deadline dropped it, the caller falls back to a default.
        model_key = next(iter(predictions))
        return predictions[model_key], 1.0

    def observe(
        self,
        state: SelectionState,
        x: Any,
        feedback: Any,
        predictions: Dict[str, Any],
    ) -> SelectionState:
        keys, probs = self._probabilities(state)
        prob_by_key = dict(zip(keys, probs))
        for model_key, prediction in predictions.items():
            if model_key not in state["weights"]:
                continue
            loss = self.loss(feedback, prediction)
            prob = max(prob_by_key.get(model_key, 1.0 / len(keys)), 1e-6)
            updated = state["weights"][model_key] * float(
                np.exp(-self.eta * loss / prob)
            )
            state["weights"][model_key] = float(
                np.clip(updated, _MIN_WEIGHT, _MAX_WEIGHT)
            )
        state["n_feedback"] = state.get("n_feedback", 0) + 1
        self._renormalize(state)
        return state

    @staticmethod
    def _renormalize(state: SelectionState) -> None:
        """Rescale weights so their mean is 1, preserving ratios.

        Keeps the state numerically healthy over long feedback streams
        without changing the sampling distribution.
        """
        weights = state["weights"]
        mean = sum(weights.values()) / len(weights)
        if mean <= 0:
            return
        for key in weights:
            weights[key] = float(
                np.clip(weights[key] / mean, _MIN_WEIGHT, _MAX_WEIGHT)
            )
