"""Ensemble combination helpers: voting and agreement-based confidence.

The paper's ensemble selection policy computes a weighted combination of the
base-model predictions and reports a *confidence* equal to the fraction of
models agreeing with the final prediction (§5.2.1).  Under straggler
mitigation, missing predictions lower the confidence because fewer models
can agree (§5.2.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Optional, Tuple


def majority_vote(predictions: Dict[str, Any]) -> Tuple[Any, float]:
    """Unweighted majority vote.

    Returns ``(winning_label, agreement_fraction)`` where the fraction is
    computed over the models present in ``predictions``.  Ties are broken by
    the smallest label repr for determinism.
    """
    return weighted_vote(predictions, weights=None)


def weighted_vote(
    predictions: Dict[str, Any], weights: Optional[Dict[str, float]] = None
) -> Tuple[Any, float]:
    """Weight-aware vote over the available model predictions.

    Parameters
    ----------
    predictions:
        Mapping of model key to predicted label (missing models omitted).
    weights:
        Optional per-model weights; missing or non-positive weights count as
        a tiny epsilon so a model never fully disappears from the vote.

    Returns
    -------
    (label, agreement):
        The winning label and the *unweighted* fraction of available models
        that predicted it — the paper's agreement-based confidence measure.
    """
    if not predictions:
        raise ValueError("cannot combine an empty prediction map")
    totals: Dict[Any, float] = defaultdict(float)
    counts: Dict[Any, int] = defaultdict(int)
    for model_key, label in predictions.items():
        weight = 1.0
        if weights is not None:
            weight = max(float(weights.get(model_key, 0.0)), 1e-9)
        totals[label] += weight
        counts[label] += 1
    winner = sorted(totals.items(), key=lambda kv: (-kv[1], repr(kv[0])))[0][0]
    agreement = counts[winner] / len(predictions)
    return winner, agreement


def agreement_confidence(
    predictions: Dict[str, Any],
    final_label: Any,
    ensemble_size: Optional[int] = None,
) -> float:
    """Fraction of the ensemble agreeing with ``final_label``.

    When ``ensemble_size`` is given (the number of models that *should* have
    answered), missing predictions count as disagreement — this is how
    straggler mitigation "communicates the potential loss in accuracy in its
    confidence score".
    """
    if ensemble_size is None:
        ensemble_size = len(predictions)
    if ensemble_size <= 0:
        return 0.0
    agreeing = sum(1 for label in predictions.values() if label == final_label)
    return agreeing / ensemble_size


def normalize_weights(weights: Dict[str, float]) -> Dict[str, float]:
    """Scale weights to sum to one (uniform if all weights are non-positive)."""
    if not weights:
        raise ValueError("weights must be non-empty")
    total = sum(max(w, 0.0) for w in weights.values())
    if total <= 0:
        uniform = 1.0 / len(weights)
        return {key: uniform for key in weights}
    return {key: max(w, 0.0) / total for key, w in weights.items()}
